"""Parsed VDX documents: the :class:`VotingSpec` value object."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..exceptions import SpecificationError
from .schema import FAULT_POLICY_FIELDS, PARAM_FIELDS, SCHEMA_VERSION
from .validation import validate_document


@dataclass(frozen=True)
class VotingSpec:
    """A validated, normalised VDX voting definition.

    Enum-valued fields are normalised to upper case; the ``params``
    object is filled with schema defaults for absent keys.  Instances
    are immutable — use :meth:`with_overrides` to derive variants
    (re-validation included).
    """

    algorithm_name: str
    quorum: str = "NONE"
    quorum_percentage: float = 100.0
    exclusion: str = "NONE"
    exclusion_threshold: float = 0.0
    history: str = "NONE"
    params: Dict[str, Any] = field(default_factory=dict)
    collation: str = "MEAN"
    bootstrapping: bool = False
    value_type: str = "NUMERIC"
    fault_policy: Optional[Dict[str, Any]] = None
    schema_version: str = SCHEMA_VERSION

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "VotingSpec":
        """Parse and validate a raw document dict.

        ``params`` keeps only the keys the document set explicitly, so
        the factory can tell a pinned parameter from an algorithm
        default; use :attr:`effective_params` for the fully-defaulted
        view.
        """
        validate_document(document)
        params = dict(document.get("params") or {})
        if isinstance(params.get("history_policy"), str):
            params["history_policy"] = params["history_policy"].lower()
        return cls(
            algorithm_name=document["algorithm_name"],
            quorum=str(document.get("quorum", "NONE")).upper(),
            quorum_percentage=float(document.get("quorum_percentage", 100)),
            exclusion=str(document.get("exclusion", "NONE")).upper(),
            exclusion_threshold=float(document.get("exclusion_threshold", 0)),
            history=str(document.get("history", "NONE")).upper(),
            params=params,
            collation=str(document.get("collation", "MEAN")).upper(),
            bootstrapping=bool(document.get("bootstrapping", False)),
            value_type=str(document.get("value_type", "NUMERIC")).upper(),
            fault_policy=(
                dict(document["fault_policy"])
                if document.get("fault_policy") is not None
                else None
            ),
            schema_version=str(document.get("schema_version", SCHEMA_VERSION)),
        )

    @classmethod
    def from_json(cls, text: str) -> "VotingSpec":
        """Parse a VDX document from its JSON text."""
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecificationError([f"invalid JSON: {exc}"])
        return cls.from_dict(document)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "VotingSpec":
        """Load a VDX document from a ``.json`` file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def save(self, path: Union[str, Path]) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    # -- derivation ----------------------------------------------------------

    def with_overrides(self, **kwargs) -> "VotingSpec":
        """A validated copy with the given fields replaced.

        ``params`` overrides merge into the existing params object
        rather than replacing it wholesale.
        """
        if "params" in kwargs:
            merged = dict(self.params)
            merged.update(kwargs["params"])
            kwargs["params"] = merged
        candidate = replace(self, **kwargs)
        return VotingSpec.from_dict(candidate.to_dict())

    # -- convenience accessors -------------------------------------------

    @property
    def error(self) -> float:
        return float(self.params.get("error", 0.05))

    @property
    def soft_threshold(self) -> float:
        return float(self.params.get("soft_threshold", 2))

    @property
    def effective_params(self) -> Dict[str, Any]:
        """Explicit params merged over the schema defaults."""
        merged = {p.name: p.default for p in PARAM_FIELDS}
        merged.update(self.params)
        return merged

    @property
    def is_categorical(self) -> bool:
        return self.value_type == "CATEGORICAL"

    def build_fault_policy(self):
        """The :class:`~repro.fusion.faults.FaultPolicy` this spec asks
        for (None when the document declares no ``fault_policy``)."""
        if self.fault_policy is None:
            return None
        from ..fusion.faults import FaultPolicy

        merged = {p.name: p.default for p in FAULT_POLICY_FIELDS}
        merged.update(self.fault_policy)
        return FaultPolicy(
            on_missing_majority=str(merged["on_missing_majority"]),
            on_conflict=str(merged["on_conflict"]),
            on_quorum_failure=str(merged["on_quorum_failure"]),
            missing_tolerance=float(merged["missing_tolerance"]),
        )
