"""Canned VDX documents, including Listing 1 from the paper."""

from __future__ import annotations

from typing import Dict

from .spec import VotingSpec

#: Listing 1, verbatim content (the paper's AVOC definition).
LISTING_1: Dict = {
    "algorithm_name": "AVOC",
    "quorum": "UNTIL",
    "quorum_percentage": 100,
    "exclusion": "NONE",
    "exclusion_threshold": 0,
    "history": "HYBRID",
    "params": {"error": 0.05, "soft_threshold": 2},
    "collation": "MEAN_NEAREST_NEIGHBOR",
    "bootstrapping": True,
}

AVOC_SPEC = VotingSpec.from_dict(LISTING_1)

HYBRID_SPEC = AVOC_SPEC.with_overrides(
    algorithm_name="Hybrid", bootstrapping=False
)

STANDARD_SPEC = VotingSpec.from_dict(
    {
        "algorithm_name": "Standard",
        "quorum": "UNTIL",
        "quorum_percentage": 100,
        "history": "STANDARD",
        "params": {"error": 0.05},
        "collation": "MEAN",
    }
)

ME_SPEC = STANDARD_SPEC.with_overrides(algorithm_name="Me", history="ME")

SDT_SPEC = VotingSpec.from_dict(
    {
        "algorithm_name": "Sdt",
        "quorum": "UNTIL",
        "quorum_percentage": 100,
        "history": "SDT",
        "params": {"error": 0.05, "soft_threshold": 2},
        "collation": "MEAN",
    }
)

CLUSTERING_SPEC = VotingSpec.from_dict(
    {
        "algorithm_name": "Clustering",
        "history": "NONE",
        "params": {"error": 0.05, "soft_threshold": 2},
        "collation": "MEAN",
        "bootstrapping": True,
    }
)

STATELESS_MEAN_SPEC = VotingSpec.from_dict(
    {
        "algorithm_name": "avg.",
        "history": "NONE",
        "collation": "MEAN",
    }
)

CATEGORICAL_SPEC = VotingSpec.from_dict(
    {
        "algorithm_name": "door-state",
        "history": "ME",
        "collation": "WEIGHTED_MAJORITY",
        "value_type": "CATEGORICAL",
    }
)

INCOHERENCE_SPEC = VotingSpec.from_dict(
    {
        "algorithm_name": "Incoherence",
        "history": "INCOHERENCE",
        "params": {
            "error": 0.05,
            "incoherence_rise": 0.35,
            "incoherence_decay": 0.1,
            "mask_threshold": 1.0,
            "rejoin_threshold": 0.25,
        },
        "collation": "MEAN",
    }
)

PROBABILISTIC_SPEC = VotingSpec.from_dict(
    {
        "algorithm_name": "door-state-prob",
        "history": "STANDARD",
        "collation": "PROBABILISTIC_MAJORITY",
        "value_type": "CATEGORICAL",
        "params": {"prior_strength": 1.0, "prior_smoothing": 1.0},
    }
)


def all_example_specs() -> Dict[str, VotingSpec]:
    """Every canned spec, keyed by its algorithm name."""
    specs = (
        AVOC_SPEC,
        HYBRID_SPEC,
        STANDARD_SPEC,
        ME_SPEC,
        SDT_SPEC,
        CLUSTERING_SPEC,
        STATELESS_MEAN_SPEC,
        CATEGORICAL_SPEC,
        INCOHERENCE_SPEC,
        PROBABILISTIC_SPEC,
    )
    return {spec.algorithm_name: spec for spec in specs}
