"""Declarative schema for VDX documents.

The schema is expressed as data (one :class:`Field` per document key) so
the validator, the documentation and the parser all derive from a single
source of truth.  Enumerations follow the paper's Listing 1 plus the
categorical extension described in §6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

SCHEMA_VERSION = "1.1"

#: Fault-handling actions for degraded rounds (the §7 extension: VDX
#: 1.1 adds "high-level descriptions of the desired fault handling
#: policy" that the paper left to client code in 1.0).
FAULT_ACTIONS = ("last_value", "raise", "skip")

#: Quorum modes.  ``NONE`` votes on whatever arrived; ``UNTIL`` waits
#: until ``quorum_percentage`` of the known modules submitted a value
#: (Listing 1 uses UNTIL/100); ``ANY`` requires at least one value.
QUORUM_MODES = ("NONE", "UNTIL", "ANY")

#: Value-based exclusion applied before the vote.  ``DEVIATION``
#: removes values more than ``exclusion_threshold`` standard deviations
#: from the round mean; ``RANGE`` removes values farther than the
#: threshold (absolute) from the round median.
EXCLUSION_MODES = ("NONE", "DEVIATION", "RANGE")

#: History algorithm selection (§4 of the paper, plus the
#: incoherence-scored adaptive masking extension [Alagöz]).
HISTORY_MODES = ("NONE", "STANDARD", "ME", "SDT", "HYBRID", "INCOHERENCE")

#: Collation techniques (§6; "mean nearest neighbour" per Listing 1;
#: PROBABILISTIC_MAJORITY is the symbol-prior categorical extension).
COLLATION_MODES = (
    "MEAN",
    "MEDIAN",
    "MEAN_NEAREST_NEIGHBOR",
    "WEIGHTED_MAJORITY",
    "PROBABILISTIC_MAJORITY",
)

#: Candidate value domains.  ``CATEGORICAL`` enables the §6 extension
#: with its restrictions (no hybrid history, no bootstrap, no
#: value-based exclusion, weighted-majority collation only).
VALUE_TYPES = ("NUMERIC", "CATEGORICAL")


@dataclass(frozen=True)
class Field:
    """One VDX document field.

    Attributes:
        name: JSON key.
        types: accepted Python types.
        required: whether the document must contain the key.
        default: value used when the key is absent.
        choices: closed enumeration (case-insensitive) when not None.
        minimum / maximum: numeric bounds when not None.
        doc: one-line description used by generated documentation.
    """

    name: str
    types: Tuple[type, ...]
    required: bool = False
    default: Any = None
    choices: Optional[Tuple[str, ...]] = None
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    doc: str = ""


FIELDS: Tuple[Field, ...] = (
    Field(
        "algorithm_name",
        (str,),
        required=True,
        doc="Free-form label for the scheme (e.g. 'AVOC').",
    ),
    Field(
        "quorum",
        (str,),
        default="NONE",
        choices=QUORUM_MODES,
        doc="When a round becomes eligible for voting.",
    ),
    Field(
        "quorum_percentage",
        (int, float),
        default=100,
        minimum=0,
        maximum=100,
        doc="Percentage of modules that must submit for quorum=UNTIL.",
    ),
    Field(
        "exclusion",
        (str,),
        default="NONE",
        choices=EXCLUSION_MODES,
        doc="Value-based outlier exclusion applied before the vote.",
    ),
    Field(
        "exclusion_threshold",
        (int, float),
        default=0,
        minimum=0,
        doc="Threshold for the selected exclusion mode.",
    ),
    Field(
        "history",
        (str,),
        default="NONE",
        choices=HISTORY_MODES,
        doc="History algorithm used to weigh candidate modules.",
    ),
    Field(
        "params",
        (dict,),
        default=None,
        doc="Algorithm parameters: error, soft_threshold, and optional "
        "history_policy/reward/penalty/learning_rate overrides.",
    ),
    Field(
        "collation",
        (str,),
        default="MEAN",
        choices=COLLATION_MODES,
        doc="How weighted candidates become one output value.",
    ),
    Field(
        "bootstrapping",
        (bool,),
        default=False,
        doc="Enable the AVOC clustering bootstrap/fallback step.",
    ),
    Field(
        "value_type",
        (str,),
        default="NUMERIC",
        choices=VALUE_TYPES,
        doc="Candidate value domain (categorical disables some features).",
    ),
    Field(
        "fault_policy",
        (dict,),
        default=None,
        doc="Optional fault-handling policy: on_missing_majority, "
        "on_conflict, on_quorum_failure (last_value/raise/skip) and "
        "missing_tolerance in [0, 1).",
    ),
    Field(
        "schema_version",
        (str,),
        default=SCHEMA_VERSION,
        doc="VDX schema version the document targets.",
    ),
)

#: Accepted keys inside the nested ``fault_policy`` object.
FAULT_POLICY_FIELDS: Tuple[Field, ...] = (
    Field(
        "on_missing_majority",
        (str,),
        default="last_value",
        choices=FAULT_ACTIONS,
        doc="Action when more than missing_tolerance of the roster is missing.",
    ),
    Field(
        "on_conflict",
        (str,),
        default="last_value",
        choices=FAULT_ACTIONS,
        doc="Action on an unresolvable majority conflict / tie.",
    ),
    Field(
        "on_quorum_failure",
        (str,),
        default="skip",
        choices=FAULT_ACTIONS,
        doc="Action when the quorum rule rejects a round.",
    ),
    Field(
        "missing_tolerance",
        (int, float),
        default=0.5,
        minimum=0,
        maximum=0.999999,
        doc="Largest tolerated missing fraction of the roster.",
    ),
)

#: Accepted keys inside the nested ``params`` object, with bounds.
PARAM_FIELDS: Tuple[Field, ...] = (
    Field("error", (int, float), default=0.05, minimum=0, doc="Relative agreement threshold ε."),
    Field(
        "soft_threshold",
        (int, float),
        default=2,
        minimum=1,
        doc="Soft-dynamic multiple k of the margin.",
    ),
    Field(
        "history_policy",
        (str,),
        default="additive",
        choices=("additive", "ema"),
        doc="History record update policy.",
    ),
    Field("reward", (int, float), default=0.1, minimum=0, doc="Additive-policy reward."),
    Field("penalty", (int, float), default=0.2, minimum=0, doc="Additive-policy penalty."),
    Field(
        "learning_rate",
        (int, float),
        default=0.3,
        minimum=0,
        maximum=1,
        doc="EMA-policy smoothing factor.",
    ),
    Field(
        "incoherence_rise",
        (int, float),
        default=0.35,
        minimum=0,
        doc="Incoherence score increment on a margin violation (history=INCOHERENCE).",
    ),
    Field(
        "incoherence_decay",
        (int, float),
        default=0.1,
        minimum=0,
        doc="Incoherence score decrement while coherent (history=INCOHERENCE).",
    ),
    Field(
        "mask_threshold",
        (int, float),
        default=1.0,
        minimum=0,
        doc="Incoherence score at which a module is masked.",
    ),
    Field(
        "rejoin_threshold",
        (int, float),
        default=0.25,
        minimum=0,
        doc="Incoherence score at which a masked module is readmitted.",
    ),
    Field(
        "score_cap",
        (int, float),
        default=2.0,
        minimum=0,
        doc="Upper bound on the incoherence score.",
    ),
    Field(
        "prior_strength",
        (int, float),
        default=1.0,
        minimum=0,
        doc="Symbol-prior exponent (collation=PROBABILISTIC_MAJORITY).",
    ),
    Field(
        "prior_smoothing",
        (int, float),
        default=1.0,
        minimum=0,
        doc="Laplace smoothing of the symbol prior.",
    ),
    Field(
        "prior_decay",
        (int, float),
        default=0.05,
        minimum=0,
        maximum=0.999999,
        doc="Per-round geometric decay of the symbol-prior counts.",
    ),
)


def field_names() -> Tuple[str, ...]:
    """All top-level VDX keys."""
    return tuple(f.name for f in FIELDS)


def defaults() -> Dict[str, Any]:
    """Top-level defaults (params expanded from PARAM_FIELDS)."""
    doc = {f.name: f.default for f in FIELDS}
    doc["params"] = {p.name: p.default for p in PARAM_FIELDS}
    return doc


def describe() -> str:
    """Human-readable schema documentation (used by the CLI)."""
    lines = [f"VDX schema version {SCHEMA_VERSION}", ""]
    for f in FIELDS:
        constraint = ""
        if f.choices:
            constraint = f" one of {f.choices}"
        elif f.minimum is not None or f.maximum is not None:
            constraint = f" in [{f.minimum}, {f.maximum if f.maximum is not None else '∞'}]"
        required = "required" if f.required else f"default {f.default!r}"
        lines.append(f"  {f.name}: {f.doc} ({required};{constraint})")
    lines.append("  params object keys:")
    for p in PARAM_FIELDS:
        lines.append(f"    {p.name}: {p.doc} (default {p.default!r})")
    lines.append("  fault_policy object keys (VDX 1.1 extension):")
    for p in FAULT_POLICY_FIELDS:
        lines.append(f"    {p.name}: {p.doc} (default {p.default!r})")
    return "\n".join(lines)
