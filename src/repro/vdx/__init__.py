"""VDX — the paper's voting definition specification (§6).

VDX is a JSON scheme that "precisely defines application requirements
and allows users to select appropriate parameters for software voters".
It is a superset of VDL [Bakken et al. 2001]: on top of VDL's quorum /
exclusion / collation triple it adds the history algorithm selection,
algorithm parameters, clustering bootstrap, and categorical values.

Typical use::

    from repro.vdx import VotingSpec, build_voter

    spec = VotingSpec.from_json(open("avoc.vdx.json").read())
    voter = build_voter(spec)
"""

from .schema import FIELDS, SCHEMA_VERSION, field_names
from .spec import VotingSpec
from .validation import validate_document
from .factory import build_voter, build_engine
from .examples import (
    AVOC_SPEC,
    CLUSTERING_SPEC,
    HYBRID_SPEC,
    LISTING_1,
    ME_SPEC,
    SDT_SPEC,
    STANDARD_SPEC,
    STATELESS_MEAN_SPEC,
    CATEGORICAL_SPEC,
    all_example_specs,
)

__all__ = [
    "FIELDS",
    "SCHEMA_VERSION",
    "field_names",
    "VotingSpec",
    "validate_document",
    "build_voter",
    "build_engine",
    "AVOC_SPEC",
    "CLUSTERING_SPEC",
    "HYBRID_SPEC",
    "LISTING_1",
    "ME_SPEC",
    "SDT_SPEC",
    "STANDARD_SPEC",
    "STATELESS_MEAN_SPEC",
    "CATEGORICAL_SPEC",
    "all_example_specs",
]
