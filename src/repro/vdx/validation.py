"""VDX document validation.

Validation happens in two layers:

1. **Field validation** against the declarative schema — unknown keys,
   wrong types, out-of-range values, unknown enum members.
2. **Cross-field rules** encoding the semantic restrictions of §6: the
   categorical mode disables value-based exclusion, the Hybrid history
   algorithm, clustering bootstrap, and every collation except the
   weighted majority vote; numeric mode conversely cannot use the
   weighted-majority collation without a history to weight it is fine,
   but ``quorum=UNTIL`` requires a quorum percentage, etc.

All problems are collected and reported at once through
:class:`~repro.exceptions.SpecificationError`.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..exceptions import SpecificationError
from .schema import FAULT_POLICY_FIELDS, FIELDS, PARAM_FIELDS, Field


def _check_field(field: Field, value: Any, problems: List[str], prefix: str = ""):
    label = f"{prefix}{field.name}"
    if not isinstance(value, field.types) or isinstance(value, bool) and bool not in field.types:
        expected = "/".join(t.__name__ for t in field.types)
        problems.append(f"{label}: expected {expected}, got {type(value).__name__}")
        return
    if field.choices is not None:
        if value.upper() not in field.choices and value not in field.choices:
            problems.append(f"{label}: {value!r} not one of {field.choices}")
        return
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if field.minimum is not None and value < field.minimum:
            problems.append(f"{label}: {value} below minimum {field.minimum}")
        if field.maximum is not None and value > field.maximum:
            problems.append(f"{label}: {value} above maximum {field.maximum}")


def validate_document(document: Dict[str, Any]) -> None:
    """Validate a raw VDX document dict; raise on any problem.

    Raises:
        SpecificationError: carrying every problem found.
    """
    if not isinstance(document, dict):
        raise SpecificationError(
            f"VDX document must be a JSON object, got {type(document).__name__}"
        )
    problems: List[str] = []
    known = {f.name: f for f in FIELDS}

    for key in document:
        if key not in known:
            problems.append(f"unknown field {key!r}")

    for field in FIELDS:
        if field.name not in document:
            if field.required:
                problems.append(f"missing required field {field.name!r}")
            continue
        value = document[field.name]
        if field.name == "params":
            if value is None:
                continue
            if not isinstance(value, dict):
                problems.append("params: expected an object")
                continue
            param_known = {p.name: p for p in PARAM_FIELDS}
            for pkey, pvalue in value.items():
                if pkey not in param_known:
                    problems.append(f"params.{pkey}: unknown parameter")
                    continue
                _check_field(param_known[pkey], pvalue, problems, prefix="params.")
            error = value.get("error")
            if isinstance(error, (int, float)) and error <= 0:
                problems.append("params.error: must be strictly positive")
            continue
        if field.name == "fault_policy":
            if value is None:
                continue
            if not isinstance(value, dict):
                problems.append("fault_policy: expected an object")
                continue
            policy_known = {p.name: p for p in FAULT_POLICY_FIELDS}
            for pkey, pvalue in value.items():
                if pkey not in policy_known:
                    problems.append(f"fault_policy.{pkey}: unknown key")
                    continue
                _check_field(
                    policy_known[pkey], pvalue, problems, prefix="fault_policy."
                )
            continue
        _check_field(field, value, problems)

    _cross_field_rules(document, problems)
    if problems:
        raise SpecificationError(problems)


def _upper(document: Dict[str, Any], key: str, default: str) -> str:
    value = document.get(key, default)
    return value.upper() if isinstance(value, str) else default


def _cross_field_rules(document: Dict[str, Any], problems: List[str]) -> None:
    value_type = _upper(document, "value_type", "NUMERIC")
    history = _upper(document, "history", "NONE")
    collation = _upper(document, "collation", "MEAN")
    exclusion = _upper(document, "exclusion", "NONE")
    quorum = _upper(document, "quorum", "NONE")
    bootstrapping = document.get("bootstrapping", False)

    if value_type == "CATEGORICAL":
        # §6: "several features are disabled" for categorical values.
        if exclusion != "NONE":
            problems.append(
                "categorical values do not support value-based exclusion "
                "(no mean/standard deviation exists)"
            )
        if history in ("HYBRID", "SDT", "INCOHERENCE"):
            problems.append(
                f"categorical values do not support the {history} history "
                "algorithm (fine-grained agreement is undefined)"
            )
        if bootstrapping:
            problems.append(
                "clustering-based bootstrapping cannot be applied to "
                "categorical values"
            )
        if collation not in ("WEIGHTED_MAJORITY", "PROBABILISTIC_MAJORITY"):
            problems.append(
                "categorical values require a majority collation "
                "(WEIGHTED_MAJORITY or PROBABILISTIC_MAJORITY)"
            )
    else:
        if collation in ("WEIGHTED_MAJORITY", "PROBABILISTIC_MAJORITY"):
            problems.append(
                f"{collation} collation is reserved for categorical "
                "value types"
            )
        if history == "INCOHERENCE" and bootstrapping:
            problems.append(
                "history=INCOHERENCE keeps no history records, so "
                "clustering bootstrapping does not apply"
            )

    params = document.get("params")
    if isinstance(params, dict):
        mask = params.get("mask_threshold", 1.0)
        rejoin = params.get("rejoin_threshold", 0.25)
        cap = params.get("score_cap", 2.0)
        if isinstance(mask, (int, float)) and isinstance(rejoin, (int, float)):
            if rejoin >= mask:
                problems.append(
                    "params.rejoin_threshold must be strictly below "
                    "params.mask_threshold (mask hysteresis)"
                )
        if isinstance(mask, (int, float)) and isinstance(cap, (int, float)):
            if cap < mask:
                problems.append(
                    "params.score_cap must be at least params.mask_threshold"
                )

    if quorum == "UNTIL":
        pct = document.get("quorum_percentage", 100)
        if isinstance(pct, (int, float)) and pct <= 0:
            problems.append("quorum=UNTIL requires quorum_percentage > 0")

    if exclusion != "NONE":
        threshold = document.get("exclusion_threshold", 0)
        if isinstance(threshold, (int, float)) and threshold <= 0:
            problems.append(f"exclusion={exclusion} requires exclusion_threshold > 0")
