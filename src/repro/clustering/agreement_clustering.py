"""The AVOC agreement-clustering step (§5 of the paper).

The clustering leverages the same logic as the voters' agreement
calculation: values within a scaling threshold of each other are grouped
(the threshold mirrors the voting algorithm's parameters — a
*soft-dynamic* margin derived from a per-round reference value, so no
separate tuning is needed), and the largest group wins.  The grouping is
"similar to DBSCAN" but self-calibrating.

We implement the grouping as connected components of the pairwise
agreement graph, which is exactly DBSCAN with ``min_samples = 1`` on a
1-D dataset and an adaptive ``eps``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..voting.agreement import binary_agreement_matrix, dynamic_margin


@dataclass(frozen=True)
class AgreementClustering:
    """Result of one agreement-clustering pass.

    Attributes:
        clusters: index groups, largest first (ties by lower first index).
        margin: the absolute grouping margin that was used.
    """

    clusters: Tuple[Tuple[int, ...], ...]
    margin: float

    @property
    def largest(self) -> Tuple[int, ...]:
        return self.clusters[0] if self.clusters else ()

    @property
    def outliers(self) -> Tuple[int, ...]:
        """Indices outside the largest cluster."""
        inside = set(self.largest)
        total = sum(len(c) for c in self.clusters)
        return tuple(i for i in range(total) if i not in inside)

    def membership(self) -> List[int]:
        """Cluster label per value index (0 = largest cluster)."""
        total = sum(len(c) for c in self.clusters)
        labels = [-1] * total
        for label, cluster in enumerate(self.clusters):
            for idx in cluster:
                labels[idx] = label
        return labels


def _connected_components(matrix: np.ndarray) -> List[List[int]]:
    """Connected components of a boolean adjacency matrix (DFS)."""
    n = matrix.shape[0]
    seen = [False] * n
    components: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        component = []
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbour in np.flatnonzero(matrix[node] > 0.5):
                if not seen[neighbour]:
                    seen[neighbour] = True
                    stack.append(int(neighbour))
        components.append(sorted(component))
    return components


def cluster_by_agreement(
    values: Sequence[float],
    error: float = 0.05,
    soft_threshold: float = 2.0,
    min_margin: float = 1e-9,
) -> AgreementClustering:
    """Group 1-D values by mutual agreement.

    The grouping margin is the voting margin (``error`` relative to the
    round's median) scaled by ``soft_threshold`` — the outermost distance
    at which the soft agreement of the host algorithm is still non-zero,
    so clustering and voting share one notion of "close enough".

    Args:
        values: the round's candidate values.
        error: relative agreement threshold ε.
        soft_threshold: scaling multiple applied to the margin.
        min_margin: absolute floor for the margin.

    Returns:
        An :class:`AgreementClustering` with clusters sorted largest
        first.
    """
    vals = np.asarray(list(values), dtype=float)
    if vals.ndim != 1:
        raise ValueError("agreement clustering operates on 1-D value sets")
    margin = dynamic_margin(vals, error, min_margin) * soft_threshold
    if vals.size == 0:
        return AgreementClustering(clusters=(), margin=margin)
    matrix = binary_agreement_matrix(vals, margin)
    components = _connected_components(matrix)
    components.sort(key=lambda c: (-len(c), c[0]))
    return AgreementClustering(
        clusters=tuple(tuple(c) for c in components), margin=margin
    )


def largest_cluster(
    values: Sequence[float],
    error: float = 0.05,
    soft_threshold: float = 2.0,
    min_margin: float = 1e-9,
) -> Tuple[int, ...]:
    """Indices of the largest agreement cluster (convenience wrapper)."""
    return cluster_by_agreement(values, error, soft_threshold, min_margin).largest
