"""Cluster quality metrics used by the tests and ablation benchmarks."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .kmeans import _as_points


def inertia(data: Sequence, labels: Sequence[int]) -> float:
    """Total within-cluster sum of squared distances to cluster means."""
    points = _as_points(data)
    labels_arr = np.asarray(list(labels), dtype=int)
    if labels_arr.shape[0] != points.shape[0]:
        raise ValueError("labels length does not match data length")
    total = 0.0
    for label in np.unique(labels_arr):
        if label < 0:
            continue  # noise points contribute nothing
        members = points[labels_arr == label]
        centre = members.mean(axis=0)
        total += float(((members - centre) ** 2).sum())
    return total


def silhouette_score(data: Sequence, labels: Sequence[int]) -> float:
    """Mean silhouette coefficient over non-noise points.

    Returns 0.0 when fewer than two clusters exist (the coefficient is
    undefined there), matching the convention used by scikit-learn's
    error case but without raising — convenient inside sweeps.
    """
    points = _as_points(data)
    labels_arr = np.asarray(list(labels), dtype=int)
    if labels_arr.shape[0] != points.shape[0]:
        raise ValueError("labels length does not match data length")
    mask = labels_arr >= 0
    points = points[mask]
    labels_arr = labels_arr[mask]
    unique = np.unique(labels_arr)
    if unique.size < 2 or points.shape[0] < 2:
        return 0.0
    diffs = points[:, None, :] - points[None, :, :]
    distances = np.sqrt((diffs**2).sum(axis=2))
    scores = []
    for i in range(points.shape[0]):
        own = labels_arr[i]
        own_mask = labels_arr == own
        own_count = int(own_mask.sum())
        if own_count <= 1:
            scores.append(0.0)
            continue
        a = distances[i][own_mask].sum() / (own_count - 1)
        b = min(
            distances[i][labels_arr == other].mean()
            for other in unique
            if other != own
        )
        denom = max(a, b)
        scores.append(0.0 if denom == 0 else (b - a) / denom)
    return float(np.mean(scores))
