"""Mean-shift mode seeking [Comaniciu & Meer 2002], from scratch.

The second unsupervised algorithm §5 of the paper proposes for the
multi-dimensional generalisation of the AVOC bootstrap.  Each point
climbs the kernel-density surface by iterated local means; points
converging to the same mode form one cluster.

Uses the **flat (truncated) kernel**: each shift moves a point to the
mean of the points within one bandwidth.  An infinite-support Gaussian
kernel would slowly drag every isolated point into the global mode —
with a flat kernel an outlier farther than one bandwidth from everyone
is its own stationary mode, which is exactly the behaviour outlier
pruning needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .kmeans import _as_points


@dataclass(frozen=True)
class MeanShiftResult:
    """Cluster modes and per-point labels (modes sorted by cluster size)."""

    modes: np.ndarray
    labels: Tuple[int, ...]

    @property
    def n_clusters(self) -> int:
        return self.modes.shape[0]

    def clusters(self) -> List[Tuple[int, ...]]:
        groups = [
            tuple(i for i, lab in enumerate(self.labels) if lab == j)
            for j in range(self.n_clusters)
        ]
        return groups


def _flat_shift(point, points, bandwidth):
    within = ((points - point) ** 2).sum(axis=1) <= bandwidth**2
    if not within.any():
        return point
    return points[within].mean(axis=0)


def mean_shift(
    data: Sequence,
    bandwidth: float,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
) -> MeanShiftResult:
    """Cluster by mode seeking with a flat (truncated) kernel.

    Args:
        data: N points (scalars or coordinate vectors).
        bandwidth: Gaussian kernel bandwidth; modes closer than one
            bandwidth are merged.
        max_iterations: per-point hill-climb cap.
        tolerance: convergence threshold on the shift length.
    """
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    points = _as_points(data)
    n = points.shape[0]
    if n == 0:
        return MeanShiftResult(modes=np.zeros((0, 1)), labels=())

    converged = np.empty_like(points)
    for i in range(n):
        current = points[i].copy()
        for _ in range(max_iterations):
            shifted = _flat_shift(current, points, bandwidth)
            if float(((shifted - current) ** 2).sum()) <= tolerance**2:
                current = shifted
                break
            current = shifted
        converged[i] = current

    # Merge modes within one bandwidth of each other.
    modes: List[np.ndarray] = []
    labels = [0] * n
    for i in range(n):
        assigned = None
        for j, mode in enumerate(modes):
            if float(((converged[i] - mode) ** 2).sum()) <= bandwidth**2:
                assigned = j
                break
        if assigned is None:
            modes.append(converged[i])
            assigned = len(modes) - 1
        labels[i] = assigned

    # Sort modes by descending cluster size for a stable, useful ordering.
    sizes = [sum(1 for lab in labels if lab == j) for j in range(len(modes))]
    order = sorted(range(len(modes)), key=lambda j: (-sizes[j], j))
    remap = {old: new for new, old in enumerate(order)}
    modes_sorted = np.asarray([modes[j] for j in order])
    labels_sorted = tuple(remap[lab] for lab in labels)
    return MeanShiftResult(modes=modes_sorted, labels=labels_sorted)
