"""DBSCAN [Ester et al. 1996], implemented from scratch on NumPy.

The paper notes AVOC's grouping logic is "similar to DBSCAN" but
self-calibrating; this full implementation lets the two be compared
directly (see ``benchmarks/test_ablations.py``) and backs the
multi-dimensional generalisation of §5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

#: Label assigned to noise points.
NOISE = -1


@dataclass(frozen=True)
class DbscanResult:
    """Labels per point (``-1`` = noise) and the core-point mask."""

    labels: Tuple[int, ...]
    core_mask: Tuple[bool, ...]

    @property
    def n_clusters(self) -> int:
        return len({label for label in self.labels if label != NOISE})

    def cluster(self, label: int) -> Tuple[int, ...]:
        return tuple(i for i, lab in enumerate(self.labels) if lab == label)

    def clusters(self) -> List[Tuple[int, ...]]:
        """All clusters, largest first."""
        found = sorted({lab for lab in self.labels if lab != NOISE})
        groups = [self.cluster(lab) for lab in found]
        groups.sort(key=lambda g: (-len(g), g[0] if g else 0))
        return groups


def _as_points(data: Sequence) -> np.ndarray:
    points = np.asarray(list(data), dtype=float)
    if points.ndim == 1:
        points = points[:, None]
    if points.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D data, got shape {points.shape}")
    return points


def dbscan(data: Sequence, eps: float, min_samples: int = 2) -> DbscanResult:
    """Density-based clustering.

    Args:
        data: N points, either scalars (1-D) or coordinate vectors.
        eps: neighbourhood radius (Euclidean).
        min_samples: minimum neighbourhood size (including the point
            itself) for a point to be a core point.

    Returns:
        A :class:`DbscanResult` with cluster labels starting at 0.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if min_samples < 1:
        raise ValueError(f"min_samples must be >= 1, got {min_samples}")
    points = _as_points(data)
    n = points.shape[0]
    if n == 0:
        return DbscanResult(labels=(), core_mask=())

    diffs = points[:, None, :] - points[None, :, :]
    distances = np.sqrt((diffs**2).sum(axis=2))
    neighbourhoods = [np.flatnonzero(distances[i] <= eps) for i in range(n)]
    core = [len(nb) >= min_samples for nb in neighbourhoods]

    labels = [NOISE] * n
    current = 0
    for seed in range(n):
        if labels[seed] != NOISE or not core[seed]:
            continue
        labels[seed] = current
        frontier = list(neighbourhoods[seed])
        while frontier:
            point = int(frontier.pop())
            if labels[point] == NOISE:
                labels[point] = current
                if core[point]:
                    frontier.extend(int(q) for q in neighbourhoods[point])
        current += 1
    return DbscanResult(labels=tuple(labels), core_mask=tuple(core))
