"""Clustering substrate.

AVOC's bootstrap step only needs the lightweight 1-D agreement
clustering in :mod:`repro.clustering.agreement_clustering`, but §5 of the
paper sketches a generalisation to multi-dimensional data via
unsupervised clustering (Mean-shift, X-means).  This package provides
from-scratch implementations of all of them plus DBSCAN (the algorithm
the paper notes its grouping logic resembles), so the generalisation can
actually be exercised rather than assumed.
"""

from .agreement_clustering import (
    AgreementClustering,
    cluster_by_agreement,
    largest_cluster,
)
from .dbscan import dbscan
from .kmeans import kmeans
from .meanshift import mean_shift
from .metrics import inertia, silhouette_score
from .xmeans import xmeans

__all__ = [
    "AgreementClustering",
    "cluster_by_agreement",
    "largest_cluster",
    "dbscan",
    "kmeans",
    "mean_shift",
    "xmeans",
    "inertia",
    "silhouette_score",
]
