"""Lloyd's k-means with k-means++ seeding, from scratch on NumPy.

Used directly for the multi-dimensional generalisation experiments and
as the inner loop of :mod:`repro.clustering.xmeans`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class KMeansResult:
    """Centroids, per-point labels, final inertia and iteration count."""

    centroids: np.ndarray
    labels: Tuple[int, ...]
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        return self.centroids.shape[0]


def _as_points(data: Sequence) -> np.ndarray:
    points = np.asarray(list(data), dtype=float)
    if points.ndim == 1:
        points = points[:, None]
    if points.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D data, got shape {points.shape}")
    return points


def _plus_plus_seeds(points: np.ndarray, k: int, rng: np.random.Generator):
    """k-means++ initial centroid selection."""
    n = points.shape[0]
    centroids = [points[rng.integers(n)]]
    for _ in range(1, k):
        dists = np.min(
            [((points - c) ** 2).sum(axis=1) for c in centroids], axis=0
        )
        total = dists.sum()
        if total == 0:
            centroids.append(points[rng.integers(n)])
            continue
        probs = dists / total
        centroids.append(points[rng.choice(n, p=probs)])
    return np.asarray(centroids)


def kmeans(
    data: Sequence,
    k: int,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
    seed: Optional[int] = 0,
) -> KMeansResult:
    """Cluster ``data`` into ``k`` groups with Lloyd's algorithm.

    Args:
        data: N points (scalars or coordinate vectors).
        k: number of clusters, 1 <= k <= N.
        max_iterations: hard iteration cap.
        tolerance: stop when centroids move less than this (squared).
        seed: RNG seed for the k-means++ initialisation.
    """
    points = _as_points(data)
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = np.random.default_rng(seed)
    centroids = _plus_plus_seeds(points, k, rng)

    labels = np.zeros(n, dtype=int)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = distances.argmin(axis=1)
        moved = 0.0
        new_centroids = centroids.copy()
        for j in range(k):
            members = points[labels == j]
            if members.size == 0:
                # Re-seed an empty cluster at the farthest point.
                farthest = distances.min(axis=1).argmax()
                new_centroids[j] = points[farthest]
            else:
                new_centroids[j] = members.mean(axis=0)
            moved += float(((new_centroids[j] - centroids[j]) ** 2).sum())
        centroids = new_centroids
        if moved <= tolerance:
            break
    distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    labels = distances.argmin(axis=1)
    inertia = float(distances[np.arange(n), labels].sum())
    return KMeansResult(
        centroids=centroids,
        labels=tuple(int(label) for label in labels),
        inertia=inertia,
        iterations=iterations,
    )
