"""X-means [Pelleg & Moore 2000]: k-means with BIC-driven cluster count.

Cited by §5 of the paper as a candidate for generalising the AVOC
bootstrap to multi-dimensional data, where the number of agreeing groups
is not known in advance.  Starting from ``k_min`` clusters, each cluster
is tentatively split in two; the split is kept when it improves the
Bayesian Information Criterion.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from .kmeans import KMeansResult, _as_points, kmeans


def _bic(points: np.ndarray, centroids: np.ndarray, labels: np.ndarray) -> float:
    """BIC of a spherical-Gaussian mixture fit (Pelleg & Moore, eq. 2-4)."""
    n, dims = points.shape
    k = centroids.shape[0]
    if n <= k:
        return -math.inf
    residual = 0.0
    for j in range(k):
        members = points[labels == j]
        if members.size:
            residual += float(((members - centroids[j]) ** 2).sum())
    variance = residual / (dims * (n - k))
    if variance <= 0:
        variance = 1e-12
    log_likelihood = 0.0
    for j in range(k):
        size = int((labels == j).sum())
        if size == 0:
            continue
        log_likelihood += (
            size * math.log(size / n)
            - size * dims / 2.0 * math.log(2.0 * math.pi * variance)
            - (size - 1) * dims / 2.0
        )
    parameters = k * (dims + 1)
    return log_likelihood - parameters / 2.0 * math.log(n)


def xmeans(
    data: Sequence,
    k_min: int = 1,
    k_max: int = 10,
    seed: Optional[int] = 0,
) -> KMeansResult:
    """Estimate cluster count and clustering simultaneously.

    Args:
        data: N points (scalars or coordinate vectors).
        k_min: starting number of clusters.
        k_max: hard upper bound on the cluster count.
        seed: RNG seed threaded through the inner k-means runs.

    Returns:
        The final :class:`~repro.clustering.kmeans.KMeansResult`.
    """
    points = _as_points(data)
    n = points.shape[0]
    if not 1 <= k_min <= k_max:
        raise ValueError(f"need 1 <= k_min <= k_max, got {k_min}, {k_max}")
    k_min = min(k_min, n)
    result = kmeans(points, k_min, seed=seed)

    improved = True
    while improved and result.k < min(k_max, n):
        improved = False
        labels = np.asarray(result.labels)
        new_centroids = []
        for j in range(result.k):
            members = points[labels == j]
            if members.shape[0] < 3:
                new_centroids.append(result.centroids[j])
                continue
            parent_bic = _bic(
                members, result.centroids[j : j + 1], np.zeros(len(members), dtype=int)
            )
            split = kmeans(members, 2, seed=seed)
            child_bic = _bic(members, split.centroids, np.asarray(split.labels))
            if child_bic > parent_bic and result.k + len(new_centroids) < k_max:
                new_centroids.extend(split.centroids)
                improved = True
            else:
                new_centroids.append(result.centroids[j])
        k_next = min(len(new_centroids), n)
        if improved:
            result = kmeans(points, k_next, seed=seed)
    return result
