"""Small shared utilities.

Currently: atomic file replacement.  Several subsystems rewrite small
state files in place — the ``BENCH_*.json`` baselines, the cluster's
``series-index.json`` and voted-watermark logs, history-log
compactions.  A plain ``write_text`` can be interrupted mid-write
(SIGKILL, job timeout, power loss), leaving a truncated file that the
next reader consumes as corrupt state.  Writing to a sibling temp file
and ``os.replace``-ing it over the target makes every such update
all-or-nothing: readers only ever see the old complete file or the new
complete file.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write(path: Union[str, Path], data: Union[str, bytes]) -> None:
    """Atomically replace ``path``'s contents with ``data``.

    The temp file lives in the target directory so the final
    ``os.replace`` is a same-filesystem rename (atomic on POSIX and
    Windows); on any failure the partial temp file is removed and the
    previous file is left untouched.  Text is written as UTF-8.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        if isinstance(data, str):
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                tmp.write(data)
        else:
            with os.fdopen(handle, "wb") as tmp:
                tmp.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
