"""Voting-parameter tuning.

The paper's Q3/Q4 conclusion is that no voting method is optimal for
every application and that the specification (VDX) exists so each
deployment can pick its own parameters.  This package closes the loop:
given a recorded scenario, *search* for the parameters that optimise a
deployment-relevant objective — fault recovery speed on UC-1, call
stability on UC-2 — instead of hand-tuning.

Two searchers are provided: exhaustive :func:`grid_search` and a small
seeded :func:`genetic_search` (genetic optimisation of voting
architectures per Torres-Echeverría et al., the reference §6 notes VDX
cannot yet express).
"""

from .space import Choice, Continuous, ParameterSpace
from .objective import (
    Objective,
    uc1_fault_recovery_objective,
    uc2_stability_objective,
)
from .search import TuningResult, Trial, grid_search
from .genetic import genetic_search
from .random_search import random_search
from .live import (
    LiveObjective,
    live_base_params,
    live_genetic_search,
    live_grid_search,
    live_random_search,
    spec_for_params,
)

__all__ = [
    "LiveObjective",
    "live_base_params",
    "live_genetic_search",
    "live_grid_search",
    "live_random_search",
    "spec_for_params",
    "random_search",
    "Choice",
    "Continuous",
    "ParameterSpace",
    "Objective",
    "uc1_fault_recovery_objective",
    "uc2_stability_objective",
    "TuningResult",
    "Trial",
    "grid_search",
    "genetic_search",
]
