"""A small, seeded genetic search over voting parameters.

Follows the classic recipe used for optimising voting architectures
[Torres-Echeverría 2012]: tournament selection, blend crossover for
continuous genes, uniform crossover for categorical genes, Gaussian
mutation clipped into range, and elitism of the single best individual.
Deterministic per seed.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..exceptions import ConfigurationError
from .objective import Objective
from .search import Trial, TuningResult, _evaluate
from .space import Choice, Continuous, ParameterSpace


def _crossover(parent_a, parent_b, space: ParameterSpace, rng) -> Dict[str, Any]:
    child: Dict[str, Any] = {}
    for name, dim in space.dimensions.items():
        if isinstance(dim, Continuous):
            # Blend (BLX-0): uniform point between the parents.
            low, high = sorted((parent_a[name], parent_b[name]))
            child[name] = float(rng.uniform(low, high)) if low < high else low
        else:
            child[name] = parent_a[name] if rng.random() < 0.5 else parent_b[name]
    return child


def _mutate(
    assignment: Dict[str, Any],
    space: ParameterSpace,
    rng,
    rate: float,
    scale: float,
) -> Dict[str, Any]:
    mutated = dict(assignment)
    for name, dim in space.dimensions.items():
        if rng.random() >= rate:
            continue
        if isinstance(dim, Continuous):
            span = dim.high - dim.low
            mutated[name] = dim.clip(
                mutated[name] + float(rng.normal(0.0, scale * span))
            )
        elif isinstance(dim, Choice):
            mutated[name] = dim.sample(rng)
    return mutated


def _tournament(population, scores, rng, k: int = 3) -> Dict[str, Any]:
    indices = rng.integers(len(population), size=min(k, len(population)))
    winner = min(indices, key=lambda i: scores[i])
    return population[int(winner)]


def genetic_search(
    objective: Objective,
    space: ParameterSpace,
    population_size: int = 16,
    generations: int = 10,
    mutation_rate: float = 0.25,
    mutation_scale: float = 0.15,
    seed: int = 0,
) -> TuningResult:
    """Evolve parameter assignments against the objective.

    Invalid assignments (rejected by VoterParams validation) score
    infinity and die out naturally.
    """
    if population_size < 4:
        raise ConfigurationError("population_size must be >= 4")
    if generations < 1:
        raise ConfigurationError("generations must be >= 1")
    rng = np.random.default_rng(seed)

    def score_of(assignment: Dict[str, Any]) -> float:
        try:
            params = space.to_params(assignment)
        except ConfigurationError:
            return float("inf")
        return _evaluate(objective, params)

    population: List[Dict[str, Any]] = [
        space.sample(rng) for _ in range(population_size)
    ]
    trials: List[Trial] = []
    scores = [score_of(a) for a in population]
    trials.extend(Trial(a, s) for a, s in zip(population, scores))

    for _ in range(generations - 1):
        elite_index = int(np.argmin(scores))
        next_population = [dict(population[elite_index])]
        while len(next_population) < population_size:
            parent_a = _tournament(population, scores, rng)
            parent_b = _tournament(population, scores, rng)
            child = _crossover(parent_a, parent_b, space, rng)
            child = _mutate(child, space, rng, mutation_rate, mutation_scale)
            next_population.append(space.clip(child))
        population = next_population
        scores = [score_of(a) for a in population]
        trials.extend(Trial(a, s) for a, s in zip(population, scores))

    best_trial = min(trials, key=lambda t: t.score)
    if best_trial.score == float("inf"):
        raise ConfigurationError("no valid assignment found by the search")
    return TuningResult(
        best_assignment=best_trial.assignment,
        best_score=best_trial.score,
        best_params=space.to_params(best_trial.assignment),
        trials=trials,
    )
