"""A small, seeded genetic search over voting parameters.

Follows the classic recipe used for optimising voting architectures
[Torres-Echeverría 2012]: tournament selection, blend crossover for
continuous genes, uniform crossover for categorical genes, Gaussian
mutation clipped into range, and elitism of the single best individual.
Deterministic per seed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..runtime.pool import WorkerPool
from .objective import Objective
from .search import Trial, TuningResult, _evaluate
from .space import Choice, Continuous, ParameterSpace


def _crossover(parent_a, parent_b, space: ParameterSpace, rng) -> Dict[str, Any]:
    child: Dict[str, Any] = {}
    for name, dim in space.dimensions.items():
        if isinstance(dim, Continuous):
            # Blend (BLX-0): uniform point between the parents.
            low, high = sorted((parent_a[name], parent_b[name]))
            child[name] = float(rng.uniform(low, high)) if low < high else low
        else:
            child[name] = parent_a[name] if rng.random() < 0.5 else parent_b[name]
    return child


def _mutate(
    assignment: Dict[str, Any],
    space: ParameterSpace,
    rng,
    rate: float,
    scale: float,
) -> Dict[str, Any]:
    mutated = dict(assignment)
    for name, dim in space.dimensions.items():
        if rng.random() >= rate:
            continue
        if isinstance(dim, Continuous):
            span = dim.high - dim.low
            mutated[name] = dim.clip(
                mutated[name] + float(rng.normal(0.0, scale * span))
            )
        elif isinstance(dim, Choice):
            mutated[name] = dim.sample(rng)
    return mutated


def _tournament(population, scores, rng, k: int = 3) -> Dict[str, Any]:
    indices = rng.integers(len(population), size=min(k, len(population)))
    winner = min(indices, key=lambda i: scores[i])
    return population[int(winner)]


def _freeze(assignment: Dict[str, Any]) -> Tuple:
    return tuple(sorted(assignment.items()))


def genetic_search(
    objective: Objective,
    space: ParameterSpace,
    population_size: int = 16,
    generations: int = 10,
    mutation_rate: float = 0.25,
    mutation_scale: float = 0.15,
    seed: int = 0,
    workers: Optional[int] = 1,
) -> TuningResult:
    """Evolve parameter assignments against the objective.

    Invalid assignments (rejected by VoterParams validation) score
    infinity and die out naturally.

    Evaluations are memoized on the frozen assignment: elitism carries
    the best individual verbatim into the next generation and crossover
    regularly produces duplicate children, so each repeat costs a dict
    lookup instead of an objective call.  The answered-from-cache count
    is reported as :attr:`TuningResult.cache_hits`.

    Every RNG draw (sampling, tournament, crossover, mutation) happens
    in the parent; only the objective calls of one generation fan out
    over ``workers`` processes.  The trial trace is therefore identical
    for any ``workers`` value.
    """
    if population_size < 4:
        raise ConfigurationError("population_size must be >= 4")
    if generations < 1:
        raise ConfigurationError("generations must be >= 1")
    rng = np.random.default_rng(seed)

    cache: Dict[Tuple, float] = {}
    cache_hits = 0

    def score_population(
        population: List[Dict[str, Any]], pool: WorkerPool
    ) -> List[float]:
        nonlocal cache_hits
        keys = [_freeze(a) for a in population]
        seen = set(cache)
        for key in keys:
            if key in seen:
                cache_hits += 1
            seen.add(key)
        pending: Dict[Tuple, Any] = {}
        for key, assignment in zip(keys, population):
            if key in cache or key in pending:
                continue
            try:
                pending[key] = space.to_params(assignment)
            except ConfigurationError:
                cache[key] = float("inf")
        if pending:
            fresh = pool.map(_evaluate, list(pending.values()))
            cache.update(zip(pending.keys(), fresh))
        return [cache[key] for key in keys]

    population: List[Dict[str, Any]] = [
        space.sample(rng) for _ in range(population_size)
    ]
    trials: List[Trial] = []
    with WorkerPool(workers=workers, payload=objective) as pool:
        scores = score_population(population, pool)
        trials.extend(Trial(a, s) for a, s in zip(population, scores))

        for _ in range(generations - 1):
            elite_index = int(np.argmin(scores))
            next_population = [dict(population[elite_index])]
            while len(next_population) < population_size:
                parent_a = _tournament(population, scores, rng)
                parent_b = _tournament(population, scores, rng)
                child = _crossover(parent_a, parent_b, space, rng)
                child = _mutate(
                    child, space, rng, mutation_rate, mutation_scale
                )
                next_population.append(space.clip(child))
            population = next_population
            scores = score_population(population, pool)
            trials.extend(Trial(a, s) for a, s in zip(population, scores))

    best_trial = min(trials, key=lambda t: t.score)
    if best_trial.score == float("inf"):
        raise ConfigurationError("no valid assignment found by the search")
    return TuningResult(
        best_assignment=best_trial.assignment,
        best_score=best_trial.score,
        best_params=space.to_params(best_trial.assignment),
        trials=trials,
        cache_hits=cache_hits,
    )
