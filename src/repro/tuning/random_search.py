"""Seeded random search — the budget-friendly baseline tuner.

Random search routinely matches grid search at a fraction of the budget
when only a few dimensions matter (Bergstra & Bengio's classic result),
and it is the natural baseline the genetic searcher must beat.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..exceptions import ConfigurationError
from .objective import Objective
from .search import Trial, TuningResult, _evaluate
from .space import ParameterSpace


def random_search(
    objective: Objective,
    space: ParameterSpace,
    n_trials: int = 50,
    seed: int = 0,
) -> TuningResult:
    """Evaluate ``n_trials`` uniform samples of the space.

    Invalid assignments (rejected by parameter validation) count as a
    used trial with an infinite score, so budgets stay comparable
    across spaces.
    """
    if n_trials < 1:
        raise ConfigurationError("n_trials must be >= 1")
    rng = np.random.default_rng(seed)
    trials: List[Trial] = []
    best: Optional[Trial] = None
    best_params = None
    for _ in range(n_trials):
        assignment = space.sample(rng)
        try:
            params = space.to_params(assignment)
        except ConfigurationError:
            trials.append(Trial(assignment=assignment, score=float("inf")))
            continue
        trial = Trial(assignment=assignment, score=_evaluate(objective, params))
        trials.append(trial)
        if best is None or trial.score < best.score:
            best = trial
            best_params = params
    if best is None or best_params is None:
        raise ConfigurationError("no valid assignment sampled")
    return TuningResult(
        best_assignment=best.assignment,
        best_score=best.score,
        best_params=best_params,
        trials=trials,
    )
