"""Seeded random search — the budget-friendly baseline tuner.

Random search routinely matches grid search at a fraction of the budget
when only a few dimensions matter (Bergstra & Bengio's classic result),
and it is the natural baseline the genetic searcher must beat.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..runtime.pool import parallel_map
from .objective import Objective
from .search import Trial, TuningResult, _evaluate
from .space import ParameterSpace


def random_search(
    objective: Objective,
    space: ParameterSpace,
    n_trials: int = 50,
    seed: int = 0,
    workers: Optional[int] = 1,
) -> TuningResult:
    """Evaluate ``n_trials`` uniform samples of the space.

    Invalid assignments (rejected by parameter validation) count as a
    used trial with an infinite score, so budgets stay comparable
    across spaces.

    All assignments are drawn from the sequential RNG stream in the
    parent before any evaluation starts (seed-per-trial, never
    seed-per-worker), so the trial trace is identical for any
    ``workers`` value.
    """
    if n_trials < 1:
        raise ConfigurationError("n_trials must be >= 1")
    rng = np.random.default_rng(seed)
    assignments = [space.sample(rng) for _ in range(n_trials)]
    valid_indices: List[int] = []
    valid_params = []
    for i, assignment in enumerate(assignments):
        try:
            valid_params.append(space.to_params(assignment))
            valid_indices.append(i)
        except ConfigurationError:
            pass
    if not valid_indices:
        raise ConfigurationError("no valid assignment sampled")
    scores = [float("inf")] * n_trials
    for i, score in zip(
        valid_indices,
        parallel_map(_evaluate, valid_params, workers=workers, payload=objective),
    ):
        scores[i] = score
    trials = [Trial(a, s) for a, s in zip(assignments, scores)]
    # The best trial is the earliest *valid* minimum: invalid samples
    # never win even when every valid score is infinite.
    pos = min(range(len(valid_indices)), key=lambda j: scores[valid_indices[j]])
    return TuningResult(
        best_assignment=trials[valid_indices[pos]].assignment,
        best_score=trials[valid_indices[pos]].score,
        best_params=valid_params[pos],
        trials=trials,
    )
