"""Exhaustive grid search over a parameter space.

All searches in this package accept a ``workers`` argument and fan
objective evaluations out over :class:`repro.runtime.WorkerPool`.
Assignments are always generated in the parent from the sequential
stream (grid order / seeded RNG), and results are reassembled in input
order, so every search returns results identical to ``workers=1`` at
any parallelism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..exceptions import ConfigurationError
from ..runtime.pool import parallel_map
from ..voting.base import VoterParams
from .objective import Objective
from .space import ParameterSpace


@dataclass(frozen=True)
class Trial:
    """One evaluated assignment."""

    assignment: Dict[str, Any]
    score: float


@dataclass
class TuningResult:
    """Outcome of a search: the best assignment plus the full trace."""

    best_assignment: Dict[str, Any]
    best_score: float
    best_params: VoterParams
    trials: List[Trial] = field(default_factory=list)
    #: Objective evaluations answered from the memo cache (genetic
    #: search re-scores elitism survivors and duplicate children).
    cache_hits: int = 0

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    def top(self, k: int = 5) -> List[Trial]:
        """The k best trials, best first."""
        return sorted(self.trials, key=lambda t: t.score)[:k]


def _evaluate(objective: Objective, params: VoterParams) -> float:
    score = objective(params)
    if score is None or (isinstance(score, float) and math.isnan(score)):
        return float("inf")
    return float(score)


def grid_search(
    objective: Objective,
    space: ParameterSpace,
    points_per_dimension: int = 5,
    max_trials: Optional[int] = None,
    workers: Optional[int] = 1,
) -> TuningResult:
    """Evaluate the full cartesian grid (optionally truncated).

    Args:
        objective: lower-is-better score function.
        space: the dimensions to sweep.
        points_per_dimension: grid resolution for continuous dimensions.
        max_trials: optional hard cap on evaluations.
        workers: objective evaluations run on this many worker
            processes (``1`` = in-process, ``None`` = one per CPU);
            the result is identical for any value.

    Raises:
        ConfigurationError: when every assignment fails to validate.
    """
    assignments: List[Dict[str, Any]] = []
    params_list: List[VoterParams] = []
    for assignment in space.grid(points_per_dimension):
        if max_trials is not None and len(assignments) >= max_trials:
            break
        try:
            params = space.to_params(assignment)
        except ConfigurationError:
            continue  # invalid corner of the grid (e.g. k < 1)
        assignments.append(assignment)
        params_list.append(params)
    if not assignments:
        raise ConfigurationError("no valid assignment in the search space")
    scores = parallel_map(
        _evaluate, params_list, workers=workers, payload=objective
    )
    trials = [Trial(a, s) for a, s in zip(assignments, scores)]
    best_index = min(range(len(trials)), key=lambda i: trials[i].score)
    return TuningResult(
        best_assignment=trials[best_index].assignment,
        best_score=trials[best_index].score,
        best_params=params_list[best_index],
        trials=trials,
    )
