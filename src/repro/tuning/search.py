"""Exhaustive grid search over a parameter space."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..exceptions import ConfigurationError
from ..voting.base import VoterParams
from .objective import Objective
from .space import ParameterSpace


@dataclass(frozen=True)
class Trial:
    """One evaluated assignment."""

    assignment: Dict[str, Any]
    score: float


@dataclass
class TuningResult:
    """Outcome of a search: the best assignment plus the full trace."""

    best_assignment: Dict[str, Any]
    best_score: float
    best_params: VoterParams
    trials: List[Trial] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    def top(self, k: int = 5) -> List[Trial]:
        """The k best trials, best first."""
        return sorted(self.trials, key=lambda t: t.score)[:k]


def _evaluate(objective: Objective, params: VoterParams) -> float:
    score = objective(params)
    if score is None or (isinstance(score, float) and math.isnan(score)):
        return float("inf")
    return float(score)


def grid_search(
    objective: Objective,
    space: ParameterSpace,
    points_per_dimension: int = 5,
    max_trials: Optional[int] = None,
) -> TuningResult:
    """Evaluate the full cartesian grid (optionally truncated).

    Args:
        objective: lower-is-better score function.
        space: the dimensions to sweep.
        points_per_dimension: grid resolution for continuous dimensions.
        max_trials: optional hard cap on evaluations.

    Raises:
        ConfigurationError: when every assignment fails to validate.
    """
    trials: List[Trial] = []
    best: Optional[Trial] = None
    best_params: Optional[VoterParams] = None
    for assignment in space.grid(points_per_dimension):
        if max_trials is not None and len(trials) >= max_trials:
            break
        try:
            params = space.to_params(assignment)
        except ConfigurationError:
            continue  # invalid corner of the grid (e.g. k < 1)
        trial = Trial(assignment=assignment, score=_evaluate(objective, params))
        trials.append(trial)
        if best is None or trial.score < best.score:
            best = trial
            best_params = params
    if best is None:
        raise ConfigurationError("no valid assignment in the search space")
    return TuningResult(
        best_assignment=best.assignment,
        best_score=best.score,
        best_params=best_params,
        trials=trials,
    )
