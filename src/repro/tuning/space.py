"""Parameter search spaces.

A :class:`ParameterSpace` maps :class:`~repro.voting.base.VoterParams`
field names to dimensions — :class:`Continuous` ranges or discrete
:class:`Choice` sets — and turns assignments into validated
``VoterParams`` instances layered over a base configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..voting.base import VoterParams


@dataclass(frozen=True)
class Continuous:
    """A continuous dimension in [low, high]."""

    low: float
    high: float

    def __post_init__(self):
        if not self.low < self.high:
            raise ConfigurationError(f"need low < high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def clip(self, value: float) -> float:
        return float(min(max(value, self.low), self.high))

    def grid(self, points: int) -> List[float]:
        if points < 2:
            return [(self.low + self.high) / 2.0]
        return [float(v) for v in np.linspace(self.low, self.high, points)]


@dataclass(frozen=True)
class Choice:
    """A discrete dimension over explicit options."""

    options: Tuple[Any, ...]

    def __init__(self, options: Sequence[Any]):
        if not options:
            raise ConfigurationError("Choice needs at least one option")
        object.__setattr__(self, "options", tuple(options))

    def sample(self, rng: np.random.Generator) -> Any:
        return self.options[int(rng.integers(len(self.options)))]

    def grid(self, points: int) -> List[Any]:
        return list(self.options)


class ParameterSpace:
    """Named dimensions over VoterParams fields.

    Args:
        dimensions: mapping of VoterParams field name to dimension.
        base: configuration the sampled fields are layered over.
    """

    def __init__(
        self,
        dimensions: Mapping[str, Any],
        base: Optional[VoterParams] = None,
    ):
        if not dimensions:
            raise ConfigurationError("parameter space has no dimensions")
        valid_fields = set(VoterParams.__dataclass_fields__)
        for name, dim in dimensions.items():
            if name not in valid_fields:
                raise ConfigurationError(f"unknown VoterParams field {name!r}")
            if not isinstance(dim, (Continuous, Choice)):
                raise ConfigurationError(
                    f"dimension {name!r} must be Continuous or Choice"
                )
        self.dimensions: Dict[str, Any] = dict(dimensions)
        self.base = base or VoterParams()

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self.dimensions)

    def sample(self, rng: np.random.Generator) -> Dict[str, Any]:
        """One random assignment."""
        return {name: dim.sample(rng) for name, dim in self.dimensions.items()}

    def grid(self, points_per_dimension: int = 5) -> Iterator[Dict[str, Any]]:
        """The full cartesian grid of assignments."""
        names = list(self.dimensions)
        axes = [self.dimensions[n].grid(points_per_dimension) for n in names]

        def recurse(index: int, partial: Dict[str, Any]):
            if index == len(names):
                yield dict(partial)
                return
            for value in axes[index]:
                partial[names[index]] = value
                yield from recurse(index + 1, partial)

        yield from recurse(0, {})

    def to_params(self, assignment: Mapping[str, Any]) -> VoterParams:
        """A validated VoterParams with the assignment applied."""
        return self.base.with_overrides(**dict(assignment))

    def clip(self, assignment: Dict[str, Any]) -> Dict[str, Any]:
        """Clamp continuous values into their ranges (GA mutation)."""
        clipped = {}
        for name, value in assignment.items():
            dim = self.dimensions[name]
            clipped[name] = dim.clip(value) if isinstance(dim, Continuous) else value
        return clipped
