"""Cluster-aware live tuning: run the VDX searches against a running cluster.

The offline searches in this package score a parameter assignment by
fusing a recorded scenario in-process.  :class:`LiveObjective` scores
the *same* assignment against a **live cluster** instead: each trial is
a two-phase ``configure`` (the cluster swaps uniformly onto the trial's
spec, or not at all) followed by a replay of the held-out clean and
fault-injected datasets through the existing ``vote_batch`` protocol,
and the response series are scored with exactly the offline UC-1
arithmetic (settling round + weighted residual).

Because the shard engines are built from the very spec the trial's
:class:`~repro.voting.base.VoterParams` round-trips through (enforced
at runtime by :func:`spec_for_params`), and the cluster replay path is
bit-identical to a direct in-process fuse (the standing
``tests/ingest/test_cluster_identity.py`` contract), a live search
returns a ranking **bit-identical to the offline objective** — at any
shard count.  Parallelism lives where the paper's deployment story
puts it: in the cluster (replica fan-out, micro-batching), not in the
search driver, so the wrappers below pin ``workers=1`` and memoize
trials on their frozen parameter assignment instead.

This is what turns tuning into a capacity-planning tool: point
``avoc tune --live HOST:PORT`` at a staging cluster and the search
measures the deployment you would actually run.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from ..analysis.convergence import convergence_round
from ..datasets.dataset import Dataset
from ..exceptions import ConfigurationError
from ..obs import MetricsRegistry, OpsInstruments, get_default_registry
from ..vdx.factory import build_voter
from ..vdx.spec import VotingSpec
from ..voting.base import VoterParams
from .genetic import genetic_search
from .random_search import random_search
from .search import TuningResult, grid_search
from .space import ParameterSpace

__all__ = [
    "LiveObjective",
    "live_base_params",
    "live_genetic_search",
    "live_grid_search",
    "live_random_search",
    "spec_for_params",
]

#: Algorithms a live trial can express as a VDX document:
#: name → (history mode, bootstrapping).
_LIVE_ALGORITHMS: Dict[str, Tuple[str, bool]] = {
    "avoc": ("HYBRID", True),
    "hybrid": ("HYBRID", False),
    "standard": ("STANDARD", False),
    "me": ("ME", False),
    "sdt": ("SDT", False),
}

#: One dispatchable request → response callable (an in-process
#: ``ClusterGateway.dispatch`` or a ``VoterClient.request``).
Dispatch = Callable[[Dict[str, Any]], Dict[str, Any]]


def _base_spec(algorithm: str, params: VoterParams) -> VotingSpec:
    key = algorithm.lower()
    if key not in _LIVE_ALGORITHMS:
        raise ConfigurationError(
            f"live tuning cannot express algorithm {algorithm!r}; "
            f"supported: {tuple(sorted(_LIVE_ALGORITHMS))}"
        )
    history, bootstrapping = _LIVE_ALGORITHMS[key]
    return VotingSpec.from_dict(
        {
            "algorithm_name": f"live-{key}",
            "history": history,
            "bootstrapping": bootstrapping,
            "collation": params.collation,
            "params": {
                "error": params.error,
                "soft_threshold": params.soft_threshold,
                "history_policy": params.history_policy,
                "reward": params.reward,
                "penalty": params.penalty,
                "learning_rate": params.learning_rate,
            },
        }
    )


def spec_for_params(algorithm: str, params: VoterParams) -> VotingSpec:
    """The VDX document whose shard-side voter carries exactly ``params``.

    Bit-identity with the offline objective hinges on the shard voting
    with the *same* parameters the trial scored, so the round-trip is
    verified at runtime: the spec is rebuilt into a voter and its
    params compared field-for-field.  A parameter the VDX schema cannot
    carry (e.g. a non-default ``elimination_threshold``) fails loudly
    here instead of silently skewing every score.
    """
    spec = _base_spec(algorithm, params)
    built = build_voter(spec).params
    if built != params:
        mismatched = sorted(
            name
            for name in VoterParams.__dataclass_fields__
            if getattr(built, name) != getattr(params, name)
        )
        raise ConfigurationError(
            f"VDX cannot express {algorithm!r} params over the wire: "
            f"fields {mismatched} do not survive the spec round-trip "
            f"(use live_base_params({algorithm!r}) as the space base)"
        )
    return spec


def live_base_params(algorithm: str) -> VoterParams:
    """The space base that survives the VDX round-trip for ``algorithm``.

    Build search spaces for live tuning over this base: every field a
    live trial cannot carry through a spec keeps the value the shard
    would reconstruct, so :func:`spec_for_params` holds for any
    assignment over the schema-carried fields (``error``,
    ``soft_threshold``, ``history_policy``, ``reward``, ``penalty``,
    ``learning_rate``, ``collation``).
    """
    key = algorithm.lower()
    if key not in _LIVE_ALGORITHMS:
        raise ConfigurationError(
            f"live tuning cannot express algorithm {algorithm!r}; "
            f"supported: {tuple(sorted(_LIVE_ALGORITHMS))}"
        )
    return build_voter(_base_spec(key, VoterParams())).params


class LiveObjective:
    """Score parameter assignments against a running cluster.

    Args:
        dispatch: request → response callable — an in-process
            :meth:`ClusterGateway.dispatch` or a connected
            :meth:`VoterClient.request` (both raise on error replies).
        clean / faulty: the held-out scenario pair (equal length); the
            score is the offline UC-1 fault-recovery arithmetic over
            the replayed outputs.
        algorithm: which voter family trials configure the cluster to.
        tolerance / residual_weight: scoring knobs, identical to
            :func:`~repro.tuning.objective.uc1_fault_recovery_objective`.
        batch_rounds: rounds per ``vote_batch`` chunk during replay.
        registry: metrics registry for the ``ops_tuning_*`` counters.

    Evaluations are memoized on the frozen
    :class:`~repro.voting.base.VoterParams` (duplicate assignments —
    common in random and genetic searches — skip the cluster entirely);
    :attr:`cache_hits` and :attr:`trials` expose the tallies.
    """

    def __init__(
        self,
        dispatch: Dispatch,
        clean: Dataset,
        faulty: Dataset,
        algorithm: str = "avoc",
        tolerance: float = 0.3,
        residual_weight: float = 100.0,
        batch_rounds: int = 512,
        registry: Optional[MetricsRegistry] = None,
    ):
        if clean.n_rounds != faulty.n_rounds:
            raise ConfigurationError(
                "clean and faulty datasets must have equal length"
            )
        if batch_rounds < 1:
            raise ConfigurationError("batch_rounds must be >= 1")
        self._dispatch = dispatch
        self.clean = clean
        self.faulty = faulty
        self.algorithm = algorithm.lower()
        self.tolerance = tolerance
        self.residual_weight = residual_weight
        self.batch_rounds = batch_rounds
        self.trials = 0
        self.cache_hits = 0
        self._evaluations = 0
        self._cache: Dict[VoterParams, float] = {}
        self._obs = OpsInstruments(
            registry if registry is not None else get_default_registry()
        )
        # Fail fast on an unsupported algorithm, before the search runs.
        live_base_params(self.algorithm)

    # -- the objective protocol -------------------------------------------

    def __call__(self, params: VoterParams) -> float:
        cached = self._cache.get(params)
        if cached is not None:
            self.cache_hits += 1
            self._obs.tuning_cache_hits.inc()
            return cached
        score = self._evaluate(params)
        self._cache[params] = score
        self.trials += 1
        self._obs.tuning_trials.inc()
        return score

    # -- one trial ---------------------------------------------------------

    def _evaluate(self, params: VoterParams) -> float:
        spec = spec_for_params(self.algorithm, params)
        # Two-phase configure: every shard swaps onto the trial's spec
        # or none does, and all series state is cleared — each trial
        # starts from the same blank history an offline run does.
        self._dispatch({"op": "configure", "spec": spec.to_dict()})
        prefix = f"tune-{self._evaluations}"
        self._evaluations += 1
        clean_out = self._replay(self.clean, f"{prefix}-clean")
        fault_out = self._replay(self.faulty, f"{prefix}-faulty")
        # Exactly uc1_fault_recovery_objective's arithmetic, over the
        # cluster-fused series instead of the in-process one.
        diff = fault_out - clean_out
        settling = convergence_round(diff, self.tolerance)
        tail = np.abs(diff[len(diff) // 2 :])
        tail = tail[~np.isnan(tail)]
        residual = float(tail.mean()) if tail.size else float("inf")
        return settling + self.residual_weight * residual

    def _replay(self, dataset: Dataset, series: str) -> np.ndarray:
        """Stream one dataset through ``vote_batch``; fused series back."""
        matrix = dataset.matrix
        modules = list(dataset.modules)
        n = matrix.shape[0]
        values = np.full(n, np.nan)
        for start in range(0, n, self.batch_rounds):
            stop = min(start + self.batch_rounds, n)
            rows = [
                [
                    float(cell) if math.isfinite(cell) else None
                    for cell in matrix[index]
                ]
                for index in range(start, stop)
            ]
            response = self._dispatch(
                {
                    "op": "vote_batch",
                    "batches": [
                        {
                            "series": series,
                            "rounds": list(range(start, stop)),
                            "modules": modules,
                            "rows": rows,
                        }
                    ],
                }
            )
            for offset, payload in enumerate(response["results"][0]["results"]):
                value = payload.get("value")
                if value is not None:
                    values[start + offset] = float(value)
        return values


def _finish(result: TuningResult, objective: LiveObjective) -> TuningResult:
    result.cache_hits += objective.cache_hits
    return result


def live_random_search(
    objective: LiveObjective,
    space: ParameterSpace,
    n_trials: int = 8,
    seed: int = 0,
) -> TuningResult:
    """Seeded random search against a live cluster.

    Assignments come from the same sequential RNG stream as the offline
    :func:`~repro.tuning.random_search.random_search`, and every score
    is the offline arithmetic over a bit-identical replay — so the
    returned ranking is bit-identical to the offline search at any
    cluster size.  ``workers`` is deliberately absent: the cluster is
    the parallelism.
    """
    result = random_search(
        objective, space, n_trials=n_trials, seed=seed, workers=1
    )
    return _finish(result, objective)


def live_grid_search(
    objective: LiveObjective,
    space: ParameterSpace,
    points_per_dimension: int = 5,
    max_trials: Optional[int] = None,
) -> TuningResult:
    """Exhaustive grid search against a live cluster."""
    result = grid_search(
        objective,
        space,
        points_per_dimension=points_per_dimension,
        max_trials=max_trials,
        workers=1,
    )
    return _finish(result, objective)


def live_genetic_search(
    objective: LiveObjective,
    space: ParameterSpace,
    **kwargs: Any,
) -> TuningResult:
    """Genetic search against a live cluster (same seeded evolution)."""
    kwargs["workers"] = 1
    result = genetic_search(objective, space, **kwargs)
    return _finish(result, objective)
