"""Tuning objectives: deployment-relevant scores for a parameter set.

An objective is any callable ``f(VoterParams) -> float`` where lower is
better.  The two factories here mirror the paper's two case studies.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..analysis.ambiguity import unstable_rounds
from ..analysis.convergence import convergence_round
from ..analysis.diff import error_injection_diff, run_voter_series
from ..datasets.ble_uc2 import UC2Dataset
from ..datasets.dataset import Dataset
from ..voting.base import Voter, VoterParams
from ..voting.registry import create_voter

#: Lower-is-better score of one parameter assignment.
Objective = Callable[[VoterParams], float]


def uc1_fault_recovery_objective(
    clean: Dataset,
    faulty: Dataset,
    algorithm: str = "avoc",
    tolerance: float = 0.3,
    residual_weight: float = 100.0,
) -> Objective:
    """UC-1 objective: recover fast *and* land on the right value.

    Score = settling round of the error-injection diff plus
    ``residual_weight`` × the mean tail |diff| — so a parameter set
    cannot win by converging instantly to a wrong stable value.
    """

    def evaluate(params: VoterParams) -> float:
        def make_voter() -> Voter:
            return create_voter(algorithm, params=params)

        diff = error_injection_diff(make_voter, clean, faulty)
        settling = convergence_round(diff, tolerance)
        tail = np.abs(diff[len(diff) // 2 :])
        tail = tail[~np.isnan(tail)]
        residual = float(tail.mean()) if tail.size else float("inf")
        return settling + residual_weight * residual

    return evaluate


def uc2_stability_objective(
    dataset: UC2Dataset,
    algorithm: str = "avoc",
) -> Objective:
    """UC-2 objective: minimise unstable closest-stack calls."""

    def evaluate(params: VoterParams) -> float:
        series = {}
        for stack, ds in dataset.stacks().items():
            voter = create_voter(algorithm, params=params)
            series[stack] = run_voter_series(voter, ds)
        return float(unstable_rounds(series["A"], series["B"]))

    return evaluate
