"""The async ingestion tier: massive sensor fan-in for the fusion stack.

"The Voting Farm" line of work argues for a distributed software-voting
front tier decoupled from the voters themselves; this package is that
tier.  :class:`AsyncIngestServer` holds tens of thousands of concurrent
sensor connections on one asyncio event loop, applies per-connection
and global backpressure, coalesces votes into the vectorised
``vote_batch`` path of a synchronous fusion sink (a single voter, a
shard, or a whole cluster gateway), and speaks the same dual-framed
protocol (v2 JSON lines / v3 binary frames) as the sync servers — so
every existing client works against it unchanged.

The sync fusion core never learns asyncio exists:
:class:`~repro.ingest.bridge.ThreadBridge` carries requests from the
event loop to blocking ``dispatch`` calls and posts results back.
"""

from .bridge import ThreadBridge
from .server import AsyncIngestServer

__all__ = ["AsyncIngestServer", "ThreadBridge"]
