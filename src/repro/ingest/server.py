"""The async ingestion gateway: massive sensor fan-in over asyncio.

One :class:`AsyncIngestServer` holds tens of thousands of concurrent
sensor connections on a single event loop and funnels their votes into
a synchronous fusion sink — a
:class:`~repro.service.server.VoterServer`, a
:class:`~repro.cluster.backend.ShardServer` or (the intended
deployment) a :class:`~repro.cluster.gateway.ClusterGateway` — through
a :class:`~repro.ingest.bridge.ThreadBridge`.

Three mechanisms keep the tier stable under overload:

* **Vote coalescing** — ``vote`` requests buffer briefly
  (``coalesce_window``) and flush as one ``vote_batch`` through the
  sink's vectorised ``process_batch`` path.  Exactly one flush is in
  flight at a time, so per-series round order is preserved end to end
  (history-aware voters are order-sensitive); the cluster gateway still
  fans each batch across shards internally, so parallelism is not lost.
* **Backpressure** — bounded vote queues, per connection and global.
  A vote over either bound is refused immediately with an
  ``ErrorCode.BACKPRESSURE`` envelope instead of buffering without
  limit; refusals are counted (``ingest_backpressure_drops_total``).
* **Slow-consumer disconnect** — a peer that stops draining responses
  is given ``drain_grace`` seconds, then dropped, so one dead sensor
  cannot pin response buffers forever.

The wire protocol is the same dual-framed protocol the sync servers
speak (JSON lines *and* v3 binary frames, detected per message by
first byte), so any :class:`~repro.service.client.VoterClient` or
:func:`repro.connect` facade works unchanged against this tier.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, List, Optional, Set, Tuple

from ..obs import IngestInstruments, MetricsRegistry, get_default_registry
from ..service.protocol import (
    FRAME_HEADER,
    FRAME_MAGIC,
    MAX_LINE_BYTES,
    ErrorCode,
    ProtocolError,
    decode_frame_header,
    decode_frame_payload,
    decode_message,
    encode_frame,
    encode_message,
    error_response,
    error_response_for,
    ok_response,
    validate_request,
)
from .bridge import ThreadBridge

__all__ = ["AsyncIngestServer"]

#: Sentinel closing a connection's response queue.
_CLOSE = object()


class _PendingVote:
    """One coalesced vote waiting for the next batch flush."""

    __slots__ = ("conn", "request", "series", "modules", "row", "future")

    def __init__(
        self,
        conn: "_Connection",
        request: Dict[str, Any],
        series: str,
        modules: Tuple[str, ...],
        row: List[Optional[float]],
        future: "asyncio.Future[Dict[str, Any]]",
    ):
        self.conn = conn
        self.request = request
        self.series = series
        self.modules = modules
        self.row = row
        self.future = future


class _Connection:
    """Per-connection state: response FIFO and backpressure accounting."""

    __slots__ = ("writer", "responses", "queued_votes", "closed")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        #: FIFO of ``(future_or_response, binary, fatal)`` — responses
        #: are written strictly in request-arrival order.
        self.responses: "asyncio.Queue[Any]" = asyncio.Queue()
        self.queued_votes = 0
        self.closed = False


class AsyncIngestServer:
    """Async fan-in tier in front of a synchronous fusion sink.

    Args:
        sink: any object with a blocking ``dispatch(request) -> dict``
            (``VoterServer``, ``ShardServer``, ``ClusterGateway``).
        host: bind address (default loopback).
        port: bind port; 0 picks a free port (see :attr:`address`).
        max_connections: connections beyond this are refused with a
            ``BACKPRESSURE`` envelope.
        max_queued_votes: global bound on buffered, unflushed votes.
        max_queued_per_connection: per-connection bound on buffered
            votes (a single runaway sensor cannot exhaust the global
            budget).
        coalesce_window: seconds to linger after the first buffered
            vote before flushing, letting a burst coalesce into one
            ``vote_batch`` (0 flushes as fast as the flush loop spins).
        drain_grace: seconds a peer may take to drain a response
            before it is disconnected as a slow consumer.
        bridge_workers: thread-pool size for the sync sink bridge.
        write_buffer_high: transport write high-water mark in bytes
            (``None`` keeps the asyncio default); lower it in tests to
            exercise the slow-consumer path without megabytes of data.
        registry: metrics registry (default: the process-global one).
    """

    def __init__(
        self,
        sink: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = 10_000,
        max_queued_votes: int = 4096,
        max_queued_per_connection: int = 64,
        coalesce_window: float = 0.002,
        drain_grace: float = 5.0,
        bridge_workers: int = 4,
        write_buffer_high: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.sink = sink
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_queued_votes = max_queued_votes
        self.max_queued_per_connection = max_queued_per_connection
        self.coalesce_window = coalesce_window
        self.drain_grace = drain_grace
        #: Transport write high-water mark; ``drain()`` blocks beyond
        #: it, which is what arms the slow-consumer timeout.  ``None``
        #: keeps the asyncio default (64 KiB).
        self.write_buffer_high = write_buffer_high
        self.registry = registry if registry is not None else get_default_registry()
        self.obs = IngestInstruments(self.registry)
        self.address: Optional[Tuple[str, int]] = None

        self._bridge = ThreadBridge(sink, workers=bridge_workers)
        self._batch_capable = hasattr(sink, "_op_vote_batch")
        self._default_series = getattr(sink, "default_series", None)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._startup_error: Optional[BaseException] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._closing = False
        self._connections: Set[_Connection] = set()
        self._conn_tasks: Set["asyncio.Task[Any]"] = set()
        self._pending: List[_PendingVote] = []
        self._queued_total = 0
        self._votes_available: Optional[asyncio.Event] = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "AsyncIngestServer":
        """Start the loop thread; returns once :attr:`address` is bound."""
        if self._thread is not None:
            return self
        self._bridge.start()
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop, args=(ready,), name="ingest-loop", daemon=True
        )
        self._thread.start()
        ready.wait()
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            self._bridge.stop()
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Stop serving: close connections, drain the loop, stop the bridge."""
        if self._thread is None:
            return
        loop, thread = self._loop, self._thread
        assert loop is not None
        def _signal() -> None:
            assert self._stop_event is not None
            self._stop_event.set()
        loop.call_soon_threadsafe(_signal)
        thread.join(timeout=10.0)
        loop.close()
        self._thread = None
        self._loop = None
        self._bridge.stop()

    def __enter__(self) -> "AsyncIngestServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- event loop bootstrap ---------------------------------------------

    def _run_loop(self, ready: threading.Event) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        try:
            self._stop_event = asyncio.Event()
            self._votes_available = asyncio.Event()
            server = self._loop.run_until_complete(
                asyncio.start_server(
                    self._serve_connection,
                    self.host,
                    self.port,
                    limit=MAX_LINE_BYTES + 1024,
                )
            )
            self._server = server
            sockname = server.sockets[0].getsockname()
            self.address = (sockname[0], sockname[1])
        except BaseException as exc:
            self._startup_error = exc
            ready.set()
            return
        ready.set()
        try:
            self._loop.run_until_complete(self._main())
        finally:
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )

    async def _main(self) -> None:
        flush_task = asyncio.ensure_future(self._coalesce_loop())
        assert self._stop_event is not None
        await self._stop_event.wait()
        self._closing = True
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        assert self._votes_available is not None
        self._votes_available.set()  # wake the flush loop so it can exit
        await flush_task
        for conn in list(self._connections):
            self._close_connection(conn)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    # -- connection handling ----------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        if self._closing or len(self._connections) >= self.max_connections:
            try:
                writer.write(
                    encode_message(
                        error_response(
                            "ingest tier at connection capacity",
                            code=ErrorCode.BACKPRESSURE,
                        )
                    )
                )
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            finally:
                writer.close()
            return
        if self.write_buffer_high is not None:
            writer.transport.set_write_buffer_limits(high=self.write_buffer_high)
        conn = _Connection(writer)
        self._connections.add(conn)
        self.obs.open_connections.inc()
        responder = asyncio.ensure_future(self._responder(conn))
        try:
            await self._read_loop(reader, conn)
        finally:
            conn.responses.put_nowait(_CLOSE)
            try:
                await responder
            except asyncio.CancelledError:
                pass
            self._connections.discard(conn)
            self.obs.open_connections.inc(-1.0)
            conn.closed = True
            writer.close()

    async def _read_loop(
        self, reader: asyncio.StreamReader, conn: _Connection
    ) -> None:
        while True:
            try:
                request, binary = await self._read_message(reader)
            except asyncio.IncompleteReadError:
                return  # clean EOF
            except (ConnectionError, OSError):
                return
            except ProtocolError as exc:
                # A bad frame header or an oversized message poisons the
                # stream — the next byte is not a message boundary.
                # Answer, then hang up.
                conn.responses.put_nowait((error_response_for(exc), False, True))
                return
            if request is None:
                continue  # blank line between JSON messages
            self._route_request(conn, request, binary)

    async def _read_message(
        self, reader: asyncio.StreamReader
    ) -> Tuple[Optional[Dict[str, Any]], bool]:
        """Read one message; returns ``(message, was_binary)``."""
        first = await reader.readexactly(1)
        if first[0] == FRAME_MAGIC:
            header = first + await reader.readexactly(FRAME_HEADER.size - 1)
            length = decode_frame_header(header)  # may raise ProtocolError
            payload = await reader.readexactly(length)
            self.obs.frames_v3_binary.inc()
            return decode_frame_payload(payload), True
        try:
            rest = await reader.readline()
        except ValueError:
            raise ProtocolError(
                "message line exceeds protocol maximum",
                code=ErrorCode.FRAME_TOO_LARGE,
            )
        line = (first + rest).strip()
        if not line:
            return None, False
        self.obs.frames_v2_json.inc()
        return decode_message(line), False

    def _route_request(
        self, conn: _Connection, request: Dict[str, Any], binary: bool
    ) -> None:
        """Classify one request: coalesce votes, bridge everything else."""
        if request.get("op") == "vote":
            try:
                validate_request(request)
            except ProtocolError as exc:
                conn.responses.put_nowait((error_response_for(exc), binary, False))
                return
            series = request.get("series", self._default_series)
            if self._batch_capable and isinstance(series, str):
                if (
                    self._queued_total >= self.max_queued_votes
                    or conn.queued_votes >= self.max_queued_per_connection
                ):
                    self.obs.backpressure_drops.inc()
                    conn.responses.put_nowait(
                        (
                            error_response(
                                "ingest vote queue is full, retry later",
                                code=ErrorCode.BACKPRESSURE,
                            ),
                            binary,
                            False,
                        )
                    )
                    return
                conn.responses.put_nowait(
                    (self._enqueue_vote(conn, request, series), binary, False)
                )
                return
        conn.responses.put_nowait((self._dispatch(request), binary, False))

    async def _responder(self, conn: _Connection) -> None:
        """Write responses in request order; drop slow consumers."""
        try:
            while True:
                item = await conn.responses.get()
                if item is _CLOSE:
                    return
                pending, binary, fatal = item
                if isinstance(pending, dict):
                    response = pending
                else:
                    try:
                        response = await pending
                    except (ProtocolError, Exception) as exc:
                        response = error_response_for(exc)
                try:
                    conn.writer.write(
                        encode_frame(response) if binary else encode_message(response)
                    )
                    await asyncio.wait_for(conn.writer.drain(), self.drain_grace)
                except asyncio.TimeoutError:
                    self.obs.slow_consumer_disconnects.inc()
                    conn.writer.close()
                    return
                except (ConnectionError, OSError):
                    return
                if fatal:
                    return
        finally:
            self._drain_responses(conn)

    def _drain_responses(self, conn: _Connection) -> None:
        """Consume leftover queued responses so futures don't warn."""
        while True:
            try:
                item = conn.responses.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is _CLOSE:
                continue
            pending = item[0]
            if isinstance(pending, asyncio.Future):
                pending.add_done_callback(_consume_result)

    def _close_connection(self, conn: _Connection) -> None:
        if not conn.closed:
            conn.closed = True
            conn.responses.put_nowait(_CLOSE)
            conn.writer.close()

    # -- sink dispatch -----------------------------------------------------

    def _dispatch(self, request: Dict[str, Any]) -> "asyncio.Future[Dict[str, Any]]":
        """Run one request on the sync sink; resolves on the loop."""
        assert self._loop is not None
        loop = self._loop
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()

        def on_done(
            result: Optional[Dict[str, Any]], exc: Optional[BaseException]
        ) -> None:
            def resolve() -> None:
                if future.done():
                    return
                if exc is not None:
                    future.set_exception(exc)
                else:
                    assert result is not None
                    future.set_result(result)

            loop.call_soon_threadsafe(resolve)

        self._bridge.submit(request, on_done)
        return future

    # -- vote coalescing ---------------------------------------------------

    def _enqueue_vote(
        self, conn: _Connection, request: Dict[str, Any], series: str
    ) -> "asyncio.Future[Dict[str, Any]]":
        assert self._loop is not None and self._votes_available is not None
        values = request["values"]
        modules = tuple(str(m) for m in values)
        row = [values[m] for m in values]
        future: "asyncio.Future[Dict[str, Any]]" = self._loop.create_future()
        self._pending.append(
            _PendingVote(conn, request, series, modules, row, future)
        )
        conn.queued_votes += 1
        self._queued_total += 1
        self.obs.queued_votes.set(float(self._queued_total))
        self._votes_available.set()
        return future

    async def _coalesce_loop(self) -> None:
        assert self._votes_available is not None
        while True:
            await self._votes_available.wait()
            self._votes_available.clear()
            if self._closing:
                self._fail_pending()
                return
            if self.coalesce_window > 0:
                await asyncio.sleep(self.coalesce_window)
            pending, self._pending = self._pending, []
            if pending:
                await self._flush(pending)

    def _settle(self, vote: _PendingVote, response: Dict[str, Any]) -> None:
        vote.conn.queued_votes -= 1
        self._queued_total -= 1
        self.obs.queued_votes.set(float(self._queued_total))
        if not vote.future.done():
            vote.future.set_result(response)

    def _fail_pending(self) -> None:
        pending, self._pending = self._pending, []
        for vote in pending:
            self._settle(
                vote,
                error_response(
                    "ingest tier is shutting down", code=ErrorCode.INTERNAL
                ),
            )

    async def _flush(self, pending: List[_PendingVote]) -> None:
        """Flush buffered votes as one ``vote_batch`` (singly on error).

        Exactly one flush runs at a time (awaited from the coalesce
        loop), which is what guarantees per-series round ordering.
        """
        groups: Dict[Tuple[str, Tuple[str, ...]], List[_PendingVote]] = {}
        for vote in pending:
            groups.setdefault((vote.series, vote.modules), []).append(vote)
        batches = []
        ordered = list(groups.items())
        for (series, modules), votes in ordered:
            batches.append(
                {
                    "series": series,
                    "rounds": [v.request["round"] for v in votes],
                    "modules": list(modules),
                    "rows": [v.row for v in votes],
                }
            )
        self.obs.coalesced_rounds.observe(float(len(pending)))
        try:
            response = await self._dispatch(
                {"op": "vote_batch", "batches": batches}
            )
        except Exception:
            # One bad vote (already-voted round, non-numeric value)
            # fails a whole batch at the sink; retry singly so only the
            # offending vote answers with an error.
            await self._flush_singly(pending)
            return
        results = response["results"]
        for (key, votes), batch_result in zip(ordered, results):
            per_round = batch_result["results"]
            for vote, entry in zip(votes, per_round):
                self._settle(vote, ok_response(result=entry))

    async def _flush_singly(self, pending: List[_PendingVote]) -> None:
        for vote in pending:
            try:
                response = await self._dispatch(vote.request)
            except Exception as exc:
                self._settle(vote, error_response_for(exc))
            else:
                self._settle(vote, response)


def _consume_result(future: "asyncio.Future[Any]") -> None:
    """Retrieve a discarded future's outcome so asyncio doesn't warn."""
    if not future.cancelled():
        future.exception()
