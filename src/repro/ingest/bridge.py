"""The thread bridge: sync ``dispatch`` calls off the event loop.

The fusion core — :class:`~repro.service.server.VoterServer`,
:class:`~repro.cluster.backend.ShardServer`,
:class:`~repro.cluster.gateway.ClusterGateway` — is deliberately
synchronous; all three expose the same blocking
``dispatch(request) -> response`` entry point.  The async ingest tier
must never run that on the event loop (a single slow fusion call would
stall every connection), so requests cross this bridge: a small pool of
worker threads drains a queue of ``(request, callback)`` pairs, calls
``sink.dispatch``, and hands the result (or the exception) to the
callback *in the worker thread*.  The async side wraps the callback
with ``loop.call_soon_threadsafe`` to resolve a future.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["ThreadBridge"]

#: ``callback(result, exception)`` — exactly one of the two is not None
#: (a ``None`` result with ``None`` exception cannot occur: ``dispatch``
#: always returns a response dict or raises).
DoneCallback = Callable[[Optional[Dict[str, Any]], Optional[BaseException]], None]

_STOP = object()


class ThreadBridge:
    """A worker pool running a sync sink's ``dispatch`` for async callers.

    Args:
        sink: any object with a blocking
            ``dispatch(request: dict) -> dict`` method.
        workers: pool size.  Fusion work is serialised by the engine
            lock anyway; extra workers only help sinks that fan out
            internally (the cluster gateway) or serve read ops
            concurrently.
    """

    def __init__(self, sink: Any, workers: int = 4):
        if workers < 1:
            raise ValueError("ThreadBridge needs at least one worker")
        self.sink = sink
        self.workers = workers
        self._queue: "queue.SimpleQueue[Any]" = queue.SimpleQueue()
        self._threads: List[threading.Thread] = []
        self._started = False
        self._lock = threading.Lock()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "ThreadBridge":
        with self._lock:
            if self._started:
                return self
            self._started = True
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._run,
                    name=f"ingest-bridge-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self

    def stop(self) -> None:
        with self._lock:
            if not self._started:
                return
            self._started = False
            threads, self._threads = self._threads, []
        for _ in threads:
            self._queue.put(_STOP)
        for thread in threads:
            thread.join(timeout=5.0)

    # -- submission -------------------------------------------------------

    def submit(self, request: Dict[str, Any], on_done: DoneCallback) -> None:
        """Queue one request; ``on_done`` fires in a worker thread."""
        if not self._started:
            raise RuntimeError("ThreadBridge is not running")
        self._queue.put((request, on_done))

    # -- worker loop ------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            request, on_done = item  # type: Tuple[Dict[str, Any], DoneCallback]
            try:
                result = self.sink.dispatch(request)
            except BaseException as exc:  # handed to the caller, not lost
                on_done(None, exc)
            else:
                on_done(result, None)
