"""Voter interface and the shared numeric voting round pipeline.

Every voter consumes :class:`~repro.types.Round` objects and produces
:class:`~repro.types.VoteOutcome` objects.  The numeric history-aware
voters (Standard, Me, Sdt, Hybrid, AVOC) share one round structure —
quorum, agreement, weighting, elimination, collation, history update —
and differ only in which agreement flavour feeds the weights, whether
elimination is active, and how results are collated.  That shared
pipeline lives in :class:`HistoryAwareVoter`; each concrete algorithm is
a thin parameterisation of it.
"""

from __future__ import annotations

import abc
import math
import warnings
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..types import Round, VoteOutcome
from .agreement import (
    agreement_scores,
    binary_agreement_matrix,
    dynamic_margin,
    soft_agreement_matrix,
)
from .collation import collate
from .history import HistoryRecords

#: Validation domains for the string-valued parameters.
_HISTORY_POLICIES = ("additive", "ema")
_ELIMINATION_MODES = ("none", "mean", "fixed")
_AGREEMENT_KINDS = ("binary", "soft")
_WEIGHT_SOURCES = ("history", "agreement", "uniform")
_COLLATIONS = ("MEAN", "MEAN_NEAREST_NEIGHBOR", "MEDIAN", "WEIGHTED_MAJORITY")
_BOOTSTRAP_MODES = ("auto", "always", "never")


@dataclass(frozen=True)
class VoterParams:
    """Tunable parameters shared by the numeric voters.

    Attributes:
        error: relative agreement threshold ε (VDX ``params.error``).
        soft_threshold: multiple *k* of the margin where soft agreement
            reaches zero (VDX ``params.soft_threshold``).
        min_margin: absolute floor for the dynamic margin.
        history_policy: ``"additive"`` or ``"ema"`` record updates.
        reward / penalty: additive-policy increments.
        learning_rate: EMA-policy smoothing factor.
        elimination: ``"none"``, ``"mean"`` (below-mean record) or
            ``"fixed"`` (record below ``elimination_threshold``).
        elimination_threshold: cutoff for ``"fixed"`` elimination.
        collation: VDX collation keyword.
        quorum_percentage: **deprecated, removal scheduled for 2.0** —
            quorum is now enforced once, by the engine-level
            :class:`~repro.fusion.quorum.QuorumRule`.  A non-zero value
            still works (and is adopted as the engine rule by
            :class:`~repro.fusion.engine.FusionEngine`) but emits a
            :class:`DeprecationWarning`.
        bootstrap_mode: when the AVOC clustering step runs — ``"auto"``
            (fresh or failed records, per the paper), ``"always"``
            (clustering-only voting) or ``"never"``.
    """

    error: float = 0.05
    soft_threshold: float = 2.0
    min_margin: float = 1e-9
    history_policy: str = "additive"
    reward: float = 0.1
    penalty: float = 0.2
    learning_rate: float = 0.3
    elimination: str = "mean"
    elimination_threshold: float = 0.5
    collation: str = "MEAN"
    quorum_percentage: float = 0.0
    bootstrap_mode: str = "auto"

    def __post_init__(self):
        if self.error <= 0:
            raise ConfigurationError(f"error must be positive, got {self.error}")
        if self.soft_threshold < 1:
            raise ConfigurationError(
                f"soft_threshold must be >= 1, got {self.soft_threshold}"
            )
        if self.min_margin < 0:
            raise ConfigurationError("min_margin must be non-negative")
        if self.history_policy not in _HISTORY_POLICIES:
            raise ConfigurationError(
                f"history_policy must be one of {_HISTORY_POLICIES}"
            )
        if self.reward < 0 or self.penalty < 0:
            raise ConfigurationError("reward and penalty must be non-negative")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ConfigurationError(
                f"learning_rate must be in (0, 1], got {self.learning_rate}"
            )
        if self.elimination not in _ELIMINATION_MODES:
            raise ConfigurationError(f"elimination must be one of {_ELIMINATION_MODES}")
        if not 0.0 <= self.elimination_threshold <= 1.0:
            raise ConfigurationError("elimination_threshold must be in [0, 1]")
        if self.collation.upper() not in _COLLATIONS:
            raise ConfigurationError(f"collation must be one of {_COLLATIONS}")
        if not 0.0 <= self.quorum_percentage <= 100.0:
            raise ConfigurationError("quorum_percentage must be in [0, 100]")
        if self.quorum_percentage > 0:
            warnings.warn(
                "VoterParams.quorum_percentage is deprecated and will be "
                "removed in 2.0; configure a QuorumRule on the "
                "FusionEngine instead (FusionEngine adopts a non-zero "
                "voter percentage automatically)",
                DeprecationWarning,
                stacklevel=3,
            )
        if self.bootstrap_mode not in _BOOTSTRAP_MODES:
            raise ConfigurationError(
                f"bootstrap_mode must be one of {_BOOTSTRAP_MODES}"
            )

    def with_overrides(self, **kwargs) -> "VoterParams":
        """A copy of these parameters with the given fields replaced."""
        return replace(self, **kwargs)


class Voter(abc.ABC):
    """Interface implemented by every voting algorithm."""

    #: Canonical algorithm name (registry key, report label).
    name: str = "abstract"
    #: True when the voter maintains per-module history records.
    stateful: bool = False

    @abc.abstractmethod
    def vote(self, voting_round: Round) -> VoteOutcome:
        """Fuse one round of readings into an outcome."""

    def reset(self) -> None:
        """Forget all internal state (history records, last output)."""

    def vote_values(self, values, round_number: int = 0) -> VoteOutcome:
        """Convenience wrapper: vote on a plain sequence of values."""
        return self.vote(Round.from_values(round_number, list(values)))

    def run(self, rounds) -> List[VoteOutcome]:
        """Vote on an iterable of rounds, in order."""
        return [self.vote(r) for r in rounds]

    def batch_kernel(self) -> Optional[str]:
        """Name of the vectorized kernel that reproduces this voter.

        :meth:`FusionEngine.process_batch` uses the returned name to
        select a kernel in :mod:`repro.fusion.batch` whose outputs are
        bit-identical to calling :meth:`vote` round by round.  ``None``
        (the default) means no such kernel exists and the batch falls
        back to the exact per-round loop.
        """
        return None


class HistoryAwareVoter(Voter):
    """Shared pipeline for the numeric history-aware voters.

    Subclasses configure the pipeline through three class attributes:

    * ``agreement_kind`` — ``"binary"`` or ``"soft"``;
    * ``weight_source`` — ``"history"`` (Standard/Me/Sdt),
      ``"agreement"`` (Hybrid/AVOC) or ``"uniform"``;
    * ``eliminates`` — whether below-par modules are zero-weighted.

    The AVOC bootstrap hooks (:meth:`_should_bootstrap`,
    :meth:`_bootstrap_vote`) are no-ops here and overridden by
    :class:`~repro.voting.avoc.AvocVoter`.
    """

    stateful = True
    agreement_kind: str = "binary"
    weight_source: str = "history"
    eliminates: bool = False

    def __init__(self, params: Optional[VoterParams] = None, history_store=None):
        if self.agreement_kind not in _AGREEMENT_KINDS:
            raise ConfigurationError(
                f"agreement_kind must be one of {_AGREEMENT_KINDS}"
            )
        if self.weight_source not in _WEIGHT_SOURCES:
            raise ConfigurationError(f"weight_source must be one of {_WEIGHT_SOURCES}")
        self.params = params or self.default_params()
        self.history = HistoryRecords(
            policy=self.params.history_policy,
            reward=self.params.reward,
            penalty=self.params.penalty,
            learning_rate=self.params.learning_rate,
            store=history_store,
        )
        self._rounds_voted = 0

    @classmethod
    def default_params(cls) -> VoterParams:
        """Default parameters for this algorithm; subclasses override."""
        return VoterParams()

    # -- pipeline steps ---------------------------------------------------

    def _agreement_matrix(self, values) -> np.ndarray:
        margin = dynamic_margin(values, self.params.error, self.params.min_margin)
        if self.agreement_kind == "binary":
            return binary_agreement_matrix(values, margin)
        return soft_agreement_matrix(values, margin, self.params.soft_threshold)

    def _eliminated(self, modules) -> Tuple[str, ...]:
        if not self.eliminates or self.params.elimination == "none":
            return ()
        if self.params.elimination == "fixed":
            cutoff = self.params.elimination_threshold
            return tuple(m for m in modules if self.history.get(m) < cutoff)
        return self.history.below_mean(modules)

    def _weights(self, modules, scores: Dict[str, float]) -> Dict[str, float]:
        if self.weight_source == "history":
            weights = self.history.weights(modules)
        elif self.weight_source == "agreement":
            weights = {m: scores.get(m, 0.0) for m in modules}
        else:
            weights = {m: 1.0 for m in modules}
        for module in self._eliminated(modules):
            weights[module] = 0.0
        return weights

    def _quorum_reached(self, voting_round: Round) -> bool:
        if self.params.quorum_percentage <= 0:
            return True
        required = math.ceil(
            len(voting_round.readings) * self.params.quorum_percentage / 100.0
        )
        return voting_round.submitted_count >= required

    # -- AVOC hooks (overridden by AvocVoter) ------------------------------

    def _should_bootstrap(self, modules) -> bool:
        return False

    def _bootstrap_vote(self, voting_round: Round) -> VoteOutcome:
        raise NotImplementedError

    # -- batch support -----------------------------------------------------

    def batch_kernel(self) -> Optional[str]:
        """``"history"`` when the shared pipeline is unmodified.

        The batch kernel replays exactly the :meth:`vote` implementation
        below, so any subclass override of the pipeline (or the AVOC
        hooks — see :meth:`AvocVoter.batch_kernel`) disables it, as do a
        write-through history store (persisted per round) and the
        WEIGHTED_MAJORITY collation (hash-based, not vectorizable
        bit-identically).
        """
        from .kernels import BATCHABLE_COLLATIONS

        cls = type(self)
        if (
            cls.vote is not HistoryAwareVoter.vote
            or cls._agreement_matrix is not HistoryAwareVoter._agreement_matrix
            or cls._weights is not HistoryAwareVoter._weights
            or cls._eliminated is not HistoryAwareVoter._eliminated
            or cls._quorum_reached is not HistoryAwareVoter._quorum_reached
            or cls._should_bootstrap is not HistoryAwareVoter._should_bootstrap
            or cls._bootstrap_vote is not HistoryAwareVoter._bootstrap_vote
        ):
            return None
        if self.history.store is not None:
            return None
        if self.params.collation.upper() not in BATCHABLE_COLLATIONS:
            return None
        return "history"

    # -- main entry ---------------------------------------------------------

    def vote(self, voting_round: Round) -> VoteOutcome:
        present = voting_round.present
        modules = [r.module for r in present]
        self.history.ensure(voting_round.modules)
        if not self._quorum_reached(voting_round):
            return VoteOutcome(
                round_number=voting_round.number,
                value=None,
                history=self.history.snapshot(),
                quorum_reached=False,
                diagnostics={"submitted": voting_round.submitted_count},
            )
        voting_round.require_nonempty()
        if self._should_bootstrap(modules):
            outcome = self._bootstrap_vote(voting_round)
            self._rounds_voted += 1
            return outcome
        values = [float(r.value) for r in present]
        matrix = self._agreement_matrix(values)
        scores = dict(zip(modules, agreement_scores(matrix)))
        weights = self._weights(modules, scores)
        output = collate(
            self.params.collation,
            values,
            [weights[m] for m in modules],
        )
        self.history.update(scores)
        self._rounds_voted += 1
        return VoteOutcome(
            round_number=voting_round.number,
            value=output,
            weights=weights,
            history=self.history.snapshot(),
            agreement=scores,
            eliminated=tuple(m for m in modules if weights[m] == 0.0),
            used_bootstrap=False,
        )

    def reset(self) -> None:
        self.history.reset()
        self._rounds_voted = 0
