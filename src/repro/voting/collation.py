"""Collation: turning weighted candidate values into one output value.

The paper distinguishes *amalgamation* (weighted averaging) from *result
selection* (picking one of the submitted values) [Latif-Shabgahi 2004].
Both families matter for the evaluation: UC-2 shows the collation method,
not the history method, dominates output quality on noisy data (§7).

Provided methods (VDX ``collation`` values in parentheses):

* :func:`weighted_mean` (``MEAN``) — amalgamation.
* :func:`mean_nearest_neighbour` (``MEAN_NEAREST_NEIGHBOR``) — selection:
  the candidate value closest to the weighted mean, used by Hybrid/AVOC.
* :func:`weighted_median` (``MEDIAN``) — robust amalgamation/selection.
* :func:`weighted_plurality` (``WEIGHTED_MAJORITY``) — categorical values.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError, NoMajorityError

#: VDX collation keyword -> implementation selector.
COLLATION_METHODS = (
    "MEAN",
    "MEAN_NEAREST_NEIGHBOR",
    "MEDIAN",
    "WEIGHTED_MAJORITY",
)


def _as_arrays(values: Sequence[float], weights: Optional[Sequence[float]]):
    vals = np.asarray(values, dtype=float)
    if weights is None:
        wts = np.ones_like(vals)
    else:
        wts = np.asarray(weights, dtype=float)
    if wts.shape != vals.shape:
        raise ValueError(
            f"weights shape {wts.shape} does not match values shape {vals.shape}"
        )
    if np.any(wts < 0):
        raise ValueError("weights must be non-negative")
    return vals, wts


def weighted_mean(
    values: Sequence[float], weights: Optional[Sequence[float]] = None
) -> float:
    """Weighted average of the candidate values.

    When all weights are zero (every module eliminated or distrusted),
    falls back to the unweighted mean — the paper's voters fall back to
    standard average in that degenerate case (§5).
    """
    vals, wts = _as_arrays(values, weights)
    if vals.size == 0:
        raise ValueError("cannot collate an empty candidate set")
    total = wts.sum()
    if total == 0:
        return float(vals.mean())
    return float((vals * wts).sum() / total)


def mean_nearest_neighbour(
    values: Sequence[float], weights: Optional[Sequence[float]] = None
) -> float:
    """Select the candidate value closest to the weighted mean.

    This is the Hybrid algorithm's result-selection step: "choose a
    winning value rather than assigning the resulting average" (§4).
    Candidates with zero weight still qualify as neighbours only if every
    weight is zero (fallback); otherwise selection is restricted to
    positively weighted candidates.
    """
    vals, wts = _as_arrays(values, weights)
    if vals.size == 0:
        raise ValueError("cannot collate an empty candidate set")
    centre = weighted_mean(vals, wts)
    eligible = np.flatnonzero(wts > 0)
    if eligible.size == 0:
        eligible = np.arange(vals.size)
    best = eligible[np.argmin(np.abs(vals[eligible] - centre))]
    return float(vals[best])


def weighted_median(
    values: Sequence[float], weights: Optional[Sequence[float]] = None
) -> float:
    """Weighted median: smallest value with cumulative weight >= half.

    With all-equal weights this is the lower median of the candidates,
    which is always one of the submitted values (a selection voter).
    Zero total weight falls back to the unweighted case.
    """
    vals, wts = _as_arrays(values, weights)
    if vals.size == 0:
        raise ValueError("cannot collate an empty candidate set")
    if wts.sum() == 0:
        wts = np.ones_like(vals)
    order = np.argsort(vals, kind="stable")
    sorted_vals = vals[order]
    cumulative = np.cumsum(wts[order])
    cutoff = cumulative[-1] / 2.0
    idx = int(np.searchsorted(cumulative, cutoff))
    idx = min(idx, sorted_vals.size - 1)
    return float(sorted_vals[idx])


def weighted_plurality(
    values: Sequence[Hashable],
    weights: Optional[Sequence[float]] = None,
    tie_break: Optional[Hashable] = None,
) -> Tuple[Hashable, Dict[Hashable, float]]:
    """Weighted plurality over categorical candidate values.

    Returns the winning value and the per-value tallies.  On an exact
    tie, ``tie_break`` wins if it is one of the tied values (the paper's
    "proximity to the previous output" tie-breaker, §7); otherwise
    :class:`~repro.exceptions.NoMajorityError` is raised so the caller's
    fault policy can decide.
    """
    if len(values) == 0:
        raise ValueError("cannot collate an empty candidate set")
    if weights is None:
        weights = [1.0] * len(values)
    if len(weights) != len(values):
        raise ValueError("weights length does not match values length")
    tallies: Dict[Hashable, float] = {}
    for value, weight in zip(values, weights):
        if weight < 0:
            raise ValueError("weights must be non-negative")
        tallies[value] = tallies.get(value, 0.0) + float(weight)
    if all(t == 0 for t in tallies.values()):
        # Degenerate all-zero weights: fall back to unweighted counts.
        tallies = {}
        for value in values:
            tallies[value] = tallies.get(value, 0.0) + 1.0
    top = max(tallies.values())
    winners = [v for v, t in tallies.items() if t == top]
    if len(winners) == 1:
        return winners[0], tallies
    if tie_break is not None and tie_break in winners:
        return tie_break, tallies
    raise NoMajorityError(f"tie between {sorted(map(repr, winners))}")


def collate(
    method: str,
    values: Sequence[Any],
    weights: Optional[Sequence[float]] = None,
    tie_break: Optional[Any] = None,
) -> Any:
    """Dispatch to a collation method by its VDX keyword."""
    method = method.upper()
    if method == "MEAN":
        return weighted_mean(values, weights)
    if method == "MEAN_NEAREST_NEIGHBOR":
        return mean_nearest_neighbour(values, weights)
    if method == "MEDIAN":
        return weighted_median(values, weights)
    if method == "WEIGHTED_MAJORITY":
        winner, _ = weighted_plurality(values, weights, tie_break=tie_break)
        return winner
    raise ConfigurationError(
        f"unknown collation method {method!r}; expected one of {COLLATION_METHODS}"
    )
