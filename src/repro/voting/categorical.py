"""Categorical voting (VDX categorical mode, §6).

VDX extends VDL by allowing votes on non-numeric values — character
strings, JSON blobs, enum states.  Per the paper, several features are
disabled in that mode: value-based exclusion (no mean/stddev exists),
the Hybrid history algorithm (no fine-grained agreement), and clustering
bootstrap; the only collation is the weighted majority vote.  The
``standard`` and ``module-elimination`` history derivations remain
available: a module "agrees" when its value equals the winning value
(or is within a caller-supplied distance metric's tolerance, the
re-introduction hook the paper mentions for implementers).
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

from ..exceptions import ConfigurationError
from ..types import Round, VoteOutcome
from .base import Voter
from .collation import weighted_plurality
from .history import HistoryRecords

_HISTORY_MODES = ("none", "standard", "me")


class CategoricalMajorityVoter(Voter):
    """History-weighted majority voting over hashable values.

    Args:
        history_mode: ``"none"`` (stateless majority), ``"standard"``
            (history-weighted majority) or ``"me"`` (additionally
            zero-weights below-mean-record modules).
        distance: optional ``f(a, b) -> float``; when given together
            with ``tolerance``, values within tolerance of the winner
            count as agreeing for the history update (custom-metric
            hook).
        tolerance: agreement tolerance used with ``distance``.
        reward / penalty / policy: history update parameters, as in
            :class:`~repro.voting.history.HistoryRecords`.
    """

    name = "categorical_majority"
    stateful = True

    def __init__(
        self,
        history_mode: str = "standard",
        distance: Optional[Callable] = None,
        tolerance: float = 0.0,
        reward: float = 0.1,
        penalty: float = 0.2,
        policy: str = "additive",
    ):
        if history_mode not in _HISTORY_MODES:
            raise ConfigurationError(
                f"history_mode must be one of {_HISTORY_MODES}, got {history_mode!r}"
            )
        if distance is None and tolerance != 0.0:
            raise ConfigurationError("tolerance requires a distance metric")
        self.history_mode = history_mode
        self.distance = distance
        self.tolerance = tolerance
        self.history = HistoryRecords(policy=policy, reward=reward, penalty=penalty)
        self._last_output: Optional[Hashable] = None

    def _agrees(self, value, winner) -> bool:
        if value == winner:
            return True
        if self.distance is not None:
            return self.distance(value, winner) <= self.tolerance
        return False

    def vote(self, voting_round: Round) -> VoteOutcome:
        voting_round.require_nonempty()
        present = voting_round.present
        modules = [r.module for r in present]
        values = [r.value for r in present]
        self.history.ensure(voting_round.modules)

        if self.history_mode == "none":
            weights = {m: 1.0 for m in modules}
            eliminated = ()
        else:
            weights = self.history.weights(modules)
            eliminated = (
                self.history.below_mean(modules) if self.history_mode == "me" else ()
            )
            for module in eliminated:
                weights[module] = 0.0

        winner, tallies = weighted_plurality(
            values,
            [weights[m] for m in modules],
            tie_break=self._last_output,
        )
        self._last_output = winner

        if self.history_mode != "none":
            scores = {
                m: (1.0 if self._agrees(v, winner) else 0.0)
                for m, v in zip(modules, values)
            }
            self.history.update(scores)

        return VoteOutcome(
            round_number=voting_round.number,
            value=winner,
            weights=weights,
            history=self.history.snapshot(),
            eliminated=eliminated,
            diagnostics={"tallies": tallies},
        )

    def reset(self) -> None:
        self.history.reset()
        self._last_output = None
