"""Name-based voter registry.

Maps the canonical algorithm names used throughout the paper's figures
(``avg.``/``average``, ``standard``, ``me``, ``sdt``, ``hybrid``,
``clustering``, ``avoc``, ...) to factories, so experiments, the VDX
factory and the CLI can instantiate voters uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..exceptions import ConfigurationError
from .agreement_weighted import AgreementWeightedVoter
from .avoc import AvocVoter
from .base import Voter, VoterParams
from .categorical import CategoricalMajorityVoter
from .clustering_voter import ClusteringOnlyVoter
from .hybrid import HybridVoter
from .incoherence import IncoherenceMaskingVoter
from .mlv import MaximumLikelihoodVoter
from .probabilistic import ProbabilisticSymbolVoter
from .module_elimination import ModuleEliminationVoter
from .soft_dynamic import SoftDynamicThresholdVoter
from .standard import StandardVoter
from .stateless import MeanVoter, MedianVoter, PluralityVoter

_REGISTRY: Dict[str, Callable[..., Voter]] = {}
_ALIASES: Dict[str, str] = {}
_CATEGORICAL: set = set()


def register_voter(
    name: str,
    factory: Callable[..., Voter],
    aliases=(),
    categorical: bool = False,
) -> None:
    """Register a voter factory under ``name`` (and optional aliases).

    ``categorical=True`` marks algorithms that vote over hashable
    symbols rather than floats; callers that feed numeric matrices
    (batch equivalence tests, numeric experiment sweeps) filter on
    :func:`categorical_algorithms`.
    """
    key = name.lower()
    if key in _REGISTRY:
        raise ConfigurationError(f"voter {name!r} is already registered")
    _REGISTRY[key] = factory
    if categorical:
        _CATEGORICAL.add(key)
    for alias in aliases:
        _ALIASES[alias.lower()] = key


def available_algorithms() -> Tuple[str, ...]:
    """Canonical names of all registered algorithms, sorted."""
    return tuple(sorted(_REGISTRY))


def categorical_algorithms() -> Tuple[str, ...]:
    """Canonical names of the categorical (symbol-voting) algorithms."""
    return tuple(sorted(_CATEGORICAL))


def create_voter(name: str, params: Optional[VoterParams] = None, **kwargs) -> Voter:
    """Instantiate a voter by (case-insensitive) name or alias.

    ``params`` is forwarded to voters that accept
    :class:`~repro.voting.base.VoterParams`; other keyword arguments are
    passed straight to the factory.
    """
    key = name.lower()
    key = _ALIASES.get(key, key)
    factory = _REGISTRY.get(key)
    if factory is None:
        raise ConfigurationError(
            f"unknown voting algorithm {name!r}; available: {available_algorithms()}"
        )
    if params is not None:
        return factory(params=params, **kwargs)
    return factory(**kwargs)


def _stateless(cls):
    """Adapt a no-params voter class to the (params=...) factory shape."""

    def factory(params=None, **kwargs):
        return cls(**kwargs)

    return factory


register_voter("average", _stateless(MeanVoter), aliases=("avg", "avg.", "mean"))
register_voter("median", _stateless(MedianVoter))
register_voter("plurality", _stateless(PluralityVoter), aliases=("majority",))
register_voter("standard", StandardVoter, aliases=("strd.", "strd", "hwa"))
register_voter("me", ModuleEliminationVoter, aliases=("module-elimination",))
register_voter("sdt", SoftDynamicThresholdVoter, aliases=("soft-dynamic",))
register_voter("hybrid", HybridVoter)
register_voter("clustering", ClusteringOnlyVoter, aliases=("cov", "clustering-only"))
register_voter("avoc", AvocVoter)
register_voter("mlv", MaximumLikelihoodVoter, aliases=("maximum-likelihood",))
register_voter("awa", AgreementWeightedVoter, aliases=("agreement-weighted",))


def _moon_factory(params=None, m=2, **kwargs):
    from .moon import MooNVoter

    return MooNVoter(m=m, params=params, **kwargs)


register_voter("moon", _moon_factory, aliases=("m-out-of-n", "2oon"))


def _categorical_factory(params=None, **kwargs):
    return CategoricalMajorityVoter(**kwargs)


register_voter(
    "categorical_majority",
    _categorical_factory,
    aliases=("categorical", "weighted_majority"),
    categorical=True,
)

register_voter(
    "incoherence",
    IncoherenceMaskingVoter,
    aliases=("incoherence-masking", "adaptive-masking"),
)


def _probabilistic_factory(params=None, **kwargs):
    return ProbabilisticSymbolVoter(**kwargs)


register_voter(
    "probabilistic",
    _probabilistic_factory,
    aliases=("probabilistic_majority", "symbol-prior"),
    categorical=True,
)
