"""M-out-of-N (MooN) exact-agreement voter.

The safety-critical literature the paper builds on (Latif-Shabgahi's
taxonomy; Torres-Echeverría's MooN architectures) includes voters that
produce an output *only* when at least M of the N modules agree — a
2oo3 aircraft sensor trio being the canonical example.  Unlike the
amalgamating voters, MooN prefers saying nothing over saying something
unsupported: availability is traded for integrity.

Implementation: agreement clustering at the (binary) margin; if the
largest cluster has at least M members, its collated value is the
output, otherwise the round yields no value and the fusion engine's
conflict policy decides (hold last value / raise / skip).
"""

from __future__ import annotations

from typing import Optional

from ..clustering.agreement_clustering import cluster_by_agreement
from ..exceptions import ConfigurationError, NoMajorityError
from ..types import Round, VoteOutcome
from .base import Voter, VoterParams
from .collation import collate


class MooNVoter(Voter):
    """Output only when at least M modules agree.

    Args:
        m: required agreeing-module count (e.g. 2 for 2oo3).
        params: agreement/collation parameters; clustering uses the
            binary margin (soft_threshold is ignored — MooN agreement
            is exact by definition).
    """

    name = "moon"
    stateful = False

    def __init__(self, m: int = 2, params: Optional[VoterParams] = None):
        if m < 1:
            raise ConfigurationError(f"m must be >= 1, got {m}")
        self.m = m
        self.params = params or VoterParams(collation="MEAN")
        self.name = f"{m}ooN"
        self.rounds_without_output = 0

    def vote(self, voting_round: Round) -> VoteOutcome:
        voting_round.require_nonempty()
        present = voting_round.present
        modules = [r.module for r in present]
        values = [float(r.value) for r in present]
        clustering = cluster_by_agreement(
            values,
            error=self.params.error,
            soft_threshold=1.0,  # exact agreement: binary margin only
            min_margin=self.params.min_margin,
        )
        winners = clustering.largest
        if len(winners) < self.m:
            self.rounds_without_output += 1
            raise NoMajorityError(
                f"only {len(winners)} of {len(modules)} modules agree; "
                f"{self.m} required"
            )
        winner_set = set(winners)
        weights = {
            module: (1.0 if i in winner_set else 0.0)
            for i, module in enumerate(modules)
        }
        output = collate(self.params.collation, [values[i] for i in winners])
        return VoteOutcome(
            round_number=voting_round.number,
            value=output,
            weights=weights,
            eliminated=tuple(
                m for i, m in enumerate(modules) if i not in winner_set
            ),
            diagnostics={
                "agreeing": len(winners),
                "required": self.m,
                "margin": clustering.margin,
            },
        )

    def reset(self) -> None:
        self.rounds_without_output = 0
