"""Symbol-prior probabilistic voting for the categorical path.

Implements the probabilistic fault-masking scheme of "Fault Masking By
Probabilistic Voting" (Alagöz, PAPERS.md) on top of the VDX categorical
mode: instead of a pure weighted majority, each candidate symbol's
weighted tally is modulated by a smoothed prior learned from the
voter's own output history.  A colluding minority that floods a rare
symbol must therefore overcome both the honest majority's tally *and*
the symbol's low prior; conversely a symbol the voter has been emitting
for many rounds survives short dropout bursts of the honest modules.

The posterior score for candidate symbol *s* in a round is::

    score(s) = tally(s) * P(s) ** prior_strength
    P(s)     = (count(s) + smoothing) / (total + smoothing * n_candidates)

where ``count`` is the (optionally decayed) number of past rounds the
voter output *s*, and ``n_candidates`` ranges over the symbols present
in the round.  With no history (cold start) every ``P(s)`` is equal and
the vote reduces exactly to the weighted majority of
:class:`~repro.voting.categorical.CategoricalMajorityVoter`;
``prior_strength=0`` disables the prior permanently.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ..exceptions import ConfigurationError, NoMajorityError
from ..types import Round, VoteOutcome
from .base import Voter
from .history import HistoryRecords

_HISTORY_MODES = ("none", "standard", "me")


class ProbabilisticSymbolVoter(Voter):
    """Weighted majority with a smoothed symbol prior.

    Args:
        history_mode: ``"none"``, ``"standard"`` or ``"me"`` — the same
            per-module reliability weighting as
            :class:`~repro.voting.categorical.CategoricalMajorityVoter`.
        prior_strength: exponent applied to the symbol prior; ``0``
            disables the prior, values above 1 sharpen it.
        smoothing: Laplace smoothing constant (> 0) keeping unseen
            symbols electable.
        prior_decay: per-round geometric decay of the prior counts in
            ``[0, 1)``; ``0`` means an all-time prior, larger values
            track regime changes faster.  The default keeps an
            effective window of ~20 rounds: an unbounded prior can
            lock onto a stale symbol after a genuine state change and
            then reinforce its own wrong outputs indefinitely.
        reward / penalty / policy: history update parameters, as in
            :class:`~repro.voting.history.HistoryRecords`.
    """

    name = "probabilistic"
    stateful = True

    def __init__(
        self,
        history_mode: str = "standard",
        prior_strength: float = 1.0,
        smoothing: float = 1.0,
        prior_decay: float = 0.05,
        reward: float = 0.1,
        penalty: float = 0.2,
        policy: str = "additive",
    ):
        if history_mode not in _HISTORY_MODES:
            raise ConfigurationError(
                f"history_mode must be one of {_HISTORY_MODES}, got {history_mode!r}"
            )
        if prior_strength < 0:
            raise ConfigurationError(
                f"prior_strength must be non-negative, got {prior_strength}"
            )
        if smoothing <= 0:
            raise ConfigurationError(
                f"smoothing must be positive, got {smoothing}"
            )
        if not 0.0 <= prior_decay < 1.0:
            raise ConfigurationError(
                f"prior_decay must be in [0, 1), got {prior_decay}"
            )
        self.history_mode = history_mode
        self.prior_strength = float(prior_strength)
        self.smoothing = float(smoothing)
        self.prior_decay = float(prior_decay)
        self.history = HistoryRecords(policy=policy, reward=reward, penalty=penalty)
        self._priors: Dict[Hashable, float] = {}
        self._last_output: Optional[Hashable] = None

    # -- introspection -----------------------------------------------------

    def symbol_priors(self) -> Dict[Hashable, float]:
        """Smoothed prior probabilities over the symbols seen so far."""
        if not self._priors:
            return {}
        total = sum(self._priors.values())
        denom = total + self.smoothing * len(self._priors)
        return {
            symbol: (count + self.smoothing) / denom
            for symbol, count in self._priors.items()
        }

    # -- Voter interface ---------------------------------------------------

    def vote(self, voting_round: Round) -> VoteOutcome:
        voting_round.require_nonempty()
        present = voting_round.present
        modules = [r.module for r in present]
        values = [r.value for r in present]
        self.history.ensure(voting_round.modules)

        if self.history_mode == "none":
            weights: Dict[str, float] = {m: 1.0 for m in modules}
            eliminated = ()
        else:
            weights = self.history.weights(modules)
            eliminated = (
                self.history.below_mean(modules) if self.history_mode == "me" else ()
            )
            for module in eliminated:
                weights[module] = 0.0

        tallies: Dict[Hashable, float] = {}
        for value, module in zip(values, modules):
            tallies[value] = tallies.get(value, 0.0) + weights[module]
        if all(t == 0 for t in tallies.values()):
            # Degenerate all-zero weights: fall back to unweighted
            # counts, mirroring weighted_plurality.
            tallies = {}
            for value in values:
                tallies[value] = tallies.get(value, 0.0) + 1.0

        total = sum(self._priors.values())
        denom = total + self.smoothing * len(tallies)
        posterior = {
            symbol: tally
            * (
                (self._priors.get(symbol, 0.0) + self.smoothing) / denom
            )
            ** self.prior_strength
            for symbol, tally in tallies.items()
        }
        top = max(posterior.values())
        winners = [s for s, score in posterior.items() if score == top]
        if len(winners) == 1:
            winner = winners[0]
        elif self._last_output is not None and self._last_output in winners:
            winner = self._last_output
        else:
            # No state is mutated on a conflict, matching the
            # weighted_plurality convention.
            raise NoMajorityError(f"tie between {sorted(map(repr, winners))}")
        self._last_output = winner

        if self.history_mode != "none":
            scores = {
                m: (1.0 if v == winner else 0.0)
                for m, v in zip(modules, values)
            }
            self.history.update(scores)

        if self.prior_decay:
            factor = 1.0 - self.prior_decay
            self._priors = {s: c * factor for s, c in self._priors.items()}
        self._priors[winner] = self._priors.get(winner, 0.0) + 1.0

        return VoteOutcome(
            round_number=voting_round.number,
            value=winner,
            weights=weights,
            history=self.history.snapshot(),
            eliminated=eliminated,
            diagnostics={"tallies": tallies, "posterior": posterior},
        )

    def reset(self) -> None:
        self.history.reset()
        self._priors.clear()
        self._last_output = None

    def batch_kernel(self) -> Optional[str]:
        """Always ``None``: the prior recurrence is hash-based.

        The symbol prior couples every round to the previous output
        through a dictionary update, so there is no bit-identical
        vectorization; :meth:`FusionEngine.process_batch` falls back to
        the exact per-round loop.
        """
        return None
