"""Vectorized voting kernels for batched fusion.

These functions operate on a whole rounds × modules float matrix at
once (NaN marks a missing reading) and back
:meth:`repro.fusion.engine.FusionEngine.process_batch`.

Bit-identity contract
---------------------
Every kernel reproduces the scalar pipeline in :mod:`repro.voting`
*bit for bit*, not merely to within tolerance:

* dense rows (no NaN) are evaluated with the same IEEE expression
  trees as the per-round functions, vectorized across rounds;
* ragged rows (with NaN) are **count-bucketed**: rows with the same
  present-count ``c`` are compacted into one dense ``buckets × c``
  submatrix and run through the same vectorized expression trees.
  Bit-identity survives the compaction because NumPy's pairwise
  summation groups operands by *axis length* — reducing a ``(B, c)``
  or ``(B, c, c)`` block along its last axis walks exactly the
  summation tree the per-round helpers walk on a length-``c`` row,
  whereas summing a NaN-masked full-width row would not (the grouping
  changes at >= 8 modules).

`collate_fast` mirrors :func:`repro.voting.collation.collate` for the
numeric methods while skipping input re-validation (batch callers
guarantee non-negative weights).

History-recurrence scans
------------------------
The history voters evolve one record per module through the clamped
recurrence ``h' = clip(step(h, s), 0, 1)``.  :func:`additive_scan`
vectorizes the additive policy across rounds inside a *segment* — a
stretch of rounds where the clamp provably never alters a value, so the
recurrence degenerates to a plain prefix sum (``np.cumsum`` accumulates
strictly sequentially, reproducing the scalar addition chain bit for
bit).  Records saturated at exactly 0 or 1 are held constant instead of
scanned, because ``clip(1 + d) == 1.0`` exactly for ``d >= 0`` (and
symmetrically at 0); a segment ends at the first round where any free
record would leave ``[0, 1]`` or any saturated record would re-enter
it.  The EMA policy multiplies the carried state every round, so no
clamp-free stretch reduces to a cumulative sum — :func:`ema_scan`
instead runs a blockwise scalar scan (Python floats walk the same IEEE
expression as the per-round NumPy update) that still amortises array
slicing and clamp checks over whole blocks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "BATCHABLE_COLLATIONS",
    "additive_scan",
    "batch_agreement_scores",
    "batch_cluster_runs",
    "batch_collate",
    "batch_dynamic_margins",
    "batch_largest_runs",
    "batch_masked_mean",
    "batch_weighted_collate",
    "collate_fast",
    "collation_function",
    "ema_scan",
    "sorted_runs",
]

#: Collation methods with a bit-identical fast path (WEIGHTED_MAJORITY
#: tallies hashable values and is handled by the plurality kernel).
BATCHABLE_COLLATIONS = ("MEAN", "MEAN_NEAREST_NEIGHBOR", "MEDIAN")

# Cap the transient (chunk, M, M) distance tensor at ~32 MB of floats.
_CHUNK_ELEMENTS = 4_000_000


def batch_dynamic_margins(
    matrix: np.ndarray,
    error: float,
    min_margin: float,
    counts: np.ndarray,
) -> np.ndarray:
    """Per-round dynamic margins, identical to :func:`dynamic_margin`.

    Rounds with zero present values get ``min_margin`` (the scalar
    helper's empty-input convention).
    """
    n_rounds = matrix.shape[0]
    margins = np.full(n_rounds, float(min_margin))
    populated = counts > 0
    if np.any(populated):
        with np.errstate(all="ignore"):
            refs = np.nanmedian(matrix[populated], axis=1)
        margins[populated] = np.maximum(np.abs(refs) * error, min_margin)
    return margins


def _count_buckets(counts: np.ndarray, selected: np.ndarray):
    """Group the ``selected`` row indices by their present-count."""
    bucket_counts = counts[selected]
    for count in np.unique(bucket_counts):
        yield int(count), selected[bucket_counts == count]


def _dense_agreement_scores(
    values: np.ndarray,
    margins: np.ndarray,
    kind: str,
    soft_threshold: float,
) -> np.ndarray:
    """Agreement scores for a dense ``rows × c`` block (c >= 2).

    Chunked so the transient ``(chunk, c, c)`` distance tensor stays
    bounded; walks the exact expression trees of
    :func:`binary_agreement_matrix` / :func:`soft_agreement_matrix` +
    :func:`agreement_scores`.
    """
    n_rows, c = values.shape
    out = np.empty((n_rows, c))
    step = max(1, _CHUNK_ELEMENTS // (c * c))
    diag = np.arange(c)
    for start in range(0, n_rows, step):
        sub = values[start : start + step]
        margin = margins[start : start + step]
        distances = np.abs(sub[:, :, None] - sub[:, None, :])
        if kind == "binary" or soft_threshold == 1:
            agreement = (distances <= margin[:, None, None]).astype(float)
        else:
            ramp = (soft_threshold - 1.0) * margin
            with np.errstate(divide="ignore", invalid="ignore"):
                agreement = np.clip(
                    (soft_threshold * margin[:, None, None] - distances)
                    / ramp[:, None, None],
                    0.0,
                    1.0,
                )
            degenerate = margin == 0
            if np.any(degenerate):
                agreement[degenerate] = (
                    distances[degenerate] <= 0.0
                ).astype(float)
        out[start : start + step] = (
            agreement.sum(axis=2) - agreement[:, diag, diag]
        ) / (c - 1)
    return out


def batch_agreement_scores(
    matrix: np.ndarray,
    margins: np.ndarray,
    kind: str,
    soft_threshold: float,
    mask: np.ndarray,
    counts: np.ndarray,
    rows: np.ndarray,
) -> np.ndarray:
    """Per-module agreement scores for the selected ``rows``.

    Returns a rounds × modules array holding each present module's
    agreement score (NaN where the module is absent or the row was not
    selected).  Dense rows run through a chunked 3-D distance tensor;
    ragged rows are count-bucketed, compacted into dense ``buckets × c``
    submatrices and run through the *same* expression trees — see the
    module docstring for why that preserves bit-identity with the
    per-round helpers.
    """
    n_rounds, n_modules = matrix.shape
    scores = np.full((n_rounds, n_modules), np.nan)

    singles = rows & (counts == 1)
    if np.any(singles):
        scores[singles[:, None] & mask] = 1.0

    if n_modules >= 2:
        dense = np.flatnonzero(rows & (counts == n_modules))
        if dense.size:
            scores[dense] = _dense_agreement_scores(
                matrix[dense], margins[dense], kind, soft_threshold
            )

        ragged = np.flatnonzero(rows & (counts >= 2) & (counts < n_modules))
        for count, sel in _count_buckets(counts, ragged):
            sub_mask = mask[sel]
            compact = matrix[sel][sub_mask].reshape(sel.size, count)
            compact_scores = _dense_agreement_scores(
                compact, margins[sel], kind, soft_threshold
            )
            scatter = np.full((sel.size, n_modules), np.nan)
            scatter[sub_mask] = compact_scores.ravel()
            scores[sel] = scatter
    return scores


def batch_collate(
    method: str,
    matrix: np.ndarray,
    mask: np.ndarray,
    counts: np.ndarray,
    rows: np.ndarray,
) -> np.ndarray:
    """Unweighted collation of each selected row (NaN elsewhere).

    Matches ``collate(method, present_values)`` exactly: MEAN divides
    by the count, MEDIAN takes the *lower* median (the element
    ``weighted_median`` selects with equal weights), and
    MEAN_NEAREST_NEIGHBOR returns the first value closest to the mean.
    """
    n_rounds, n_modules = matrix.shape
    out = np.full(n_rounds, np.nan)
    dense = rows & (counts == n_modules) & (n_modules > 0)
    ragged = rows & (counts > 0) & ~dense
    sel = np.flatnonzero(dense)
    if sel.size:
        out[sel] = _dense_collate(method, matrix[sel])
    ragged_idx = np.flatnonzero(ragged)
    for count, sel in _count_buckets(counts, ragged_idx):
        compact = matrix[sel][mask[sel]].reshape(sel.size, count)
        out[sel] = _dense_collate(method, compact)
    return out


def _dense_collate(method: str, sub: np.ndarray) -> np.ndarray:
    """Collate each row of a dense ``rows × c`` block.

    Row-parallel twins of the scalar helpers: MEAN divides by the count,
    MEDIAN partitions to the lower-median element (the one
    ``weighted_median`` selects with equal weights), and
    MEAN_NEAREST_NEIGHBOR takes the first value closest to the mean
    (``np.argmin`` returns the first minimum, like the scalar path).
    """
    c = sub.shape[1]
    if method == "MEAN":
        return sub.sum(axis=1) / float(c)
    if method == "MEDIAN":
        k = (c + 1) // 2 - 1  # lower median: ceil(c/2)-1
        return np.partition(sub, k, axis=1)[:, k]
    # MEAN_NEAREST_NEIGHBOR
    centres = sub.sum(axis=1) / float(c)
    nearest = np.argmin(np.abs(sub - centres[:, None]), axis=1)
    return sub[np.arange(sub.shape[0]), nearest]


def collation_function(method: str):
    """The per-round fast collation callable for ``method``.

    Returns a ``(values, weights) -> float`` callable so hot loops can
    hoist the method dispatch out of the per-round body.
    """
    if method == "MEAN":
        return _weighted_mean
    if method == "MEAN_NEAREST_NEIGHBOR":
        return _mean_nearest_neighbour
    if method == "MEDIAN":
        return _weighted_median
    raise ValueError(f"no fast collation for method {method!r}")


def sorted_runs(values: np.ndarray, margin: float) -> List[np.ndarray]:
    """Agreement clusters of 1-D ``values``, as arrays of indices.

    Exactly equivalent to the connected components of the binary
    agreement graph used by :func:`cluster_by_agreement`: in sorted
    order an edge can only join consecutive values, so each component
    is a maximal run whose consecutive gaps are all <= ``margin``.
    Runs are ordered largest-first with ties broken by the smallest
    original index, matching the scalar clustering helper.
    """
    order = np.argsort(values, kind="stable")
    if order.size == 0:
        return []
    sorted_values = values[order]
    splits = np.flatnonzero(np.diff(sorted_values) > margin) + 1
    runs = np.split(order, splits)
    runs.sort(key=lambda run: (-run.size, int(run.min())))
    return runs


def _weighted_mean(values: np.ndarray, weights: Optional[np.ndarray]) -> float:
    if weights is None:
        # x * 1.0 == x bitwise and sum(ones) is the exact count, so the
        # unweighted mean reduces to sum/len with identical rounding.
        return float(values.sum() / float(values.size))
    total = weights.sum()
    if total == 0:
        return float(values.mean())
    return float((values * weights).sum() / total)


def _mean_nearest_neighbour(
    values: np.ndarray, weights: Optional[np.ndarray]
) -> float:
    centre = _weighted_mean(values, weights)
    if weights is None:
        return float(values[np.argmin(np.abs(values - centre))])
    eligible = np.flatnonzero(weights > 0)
    if eligible.size == 0:
        eligible = np.arange(values.size)
    best = eligible[np.argmin(np.abs(values[eligible] - centre))]
    return float(values[best])


def _weighted_median(
    values: np.ndarray, weights: Optional[np.ndarray]
) -> float:
    if weights is None or weights.sum() == 0:
        weights = np.ones_like(values)
    order = np.argsort(values, kind="stable")
    ranked = values[order]
    cumulative = np.cumsum(weights[order])
    cutoff = cumulative[-1] / 2.0
    idx = min(int(np.searchsorted(cumulative, cutoff)), ranked.size - 1)
    return float(ranked[idx])


def additive_scan(
    state: np.ndarray, steps: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Clamped-affine scan of the additive history recurrence.

    Args:
        state: current records, shape ``(n,)``, all within ``[0, 1]``.
        steps: per-round increments, shape ``(b, n)`` (0.0 for modules
            absent that round — ``x + 0.0 == x`` bitwise).

    Returns:
        ``(befores, finals, events)`` — ``befores[i]`` is the record
        state *before* round ``i`` (so ``befores[0] == state``),
        ``finals`` the state after all ``b`` rounds, and ``events`` a
        per-round bool marking rounds whose update the clamp would
        alter.  Rows strictly before the first event are bit-identical
        to the scalar ``clip(h + step)`` chain (the clip is the identity
        there); the caller must stop committing at the first event and
        handle that round scalar.

    Records saturated at exactly 0.0 / 1.0 are held constant rather
    than accumulated: ``clip(1.0 + d) == 1.0`` exactly while ``d >= 0``
    (symmetrically at 0), so a pinned record only forces an event when
    a step would pull it back inside the open interval.  This is what
    keeps long saturated stretches — the common steady state of the
    additive policy — fully vectorized instead of breaking the segment
    every round.
    """
    b, n = steps.shape
    pinned_hi = state == 1.0
    pinned_lo = state == 0.0
    free = ~(pinned_hi | pinned_lo)
    events = np.zeros(b, dtype=bool)
    befores = np.empty((b, n))
    finals = state.copy()
    if pinned_hi.any():
        befores[:, pinned_hi] = 1.0
        events |= (steps[:, pinned_hi] < 0.0).any(axis=1)
    if pinned_lo.any():
        befores[:, pinned_lo] = 0.0
        events |= (steps[:, pinned_lo] > 0.0).any(axis=1)
    if free.any():
        # Prepending the start state makes cumsum walk the exact scalar
        # addition chain: row k is ((state + d1) + d2) + ... + dk.
        acc = np.cumsum(np.vstack([state[free], steps[:, free]]), axis=0)
        befores[:, free] = acc[:-1]
        finals[free] = acc[-1]
        events |= (acc[1:] < 0.0).any(axis=1) | (acc[1:] > 1.0).any(axis=1)
    return befores, finals, events


def ema_scan(
    state: np.ndarray,
    steps: np.ndarray,
    present: np.ndarray,
    one_minus_lr: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Blockwise scalar scan of the EMA history recurrence.

    Args:
        state: current records, shape ``(n,)``.
        steps: per-round ``learning_rate * clamped_score`` terms, shape
            ``(b, n)``.
        present: bool mask, shape ``(b, n)`` — absent modules keep
            their record untouched (``(1-lr)*h + 0 != h`` bitwise, so
            EMA genuinely skips them rather than applying a zero step).
        one_minus_lr: the precomputed ``1.0 - learning_rate`` factor.

    Returns:
        ``(befores, finals)`` like :func:`additive_scan` (no event
        column: the EMA step keeps every update inline-clamped, so all
        ``b`` rows are always valid).

    The multiplication by ``one_minus_lr`` makes the recurrence
    genuinely sequential — no prefix-sum identity applies — so this
    runs a per-module scalar loop over Python floats.  The Python
    expression ``one_minus_lr * h + step`` with an if-clamp evaluates
    the identical IEEE operations as the per-round NumPy update
    ``clip((1-lr)*records + lr*score)``, so results are bit-identical;
    the win over the per-round loop is amortising all array slicing,
    bound checks and dispatch over a whole block per module.
    """
    b, n = steps.shape
    befores = np.empty((b, n))
    finals = np.empty(n)
    for j in range(n):
        h = float(state[j])
        col_steps = steps[:, j].tolist()
        col_present = present[:, j].tolist()
        col_out = col_steps[:]  # reuse as the output scratch list
        for i in range(b):
            col_out[i] = h
            if col_present[i]:
                h = one_minus_lr * h + col_steps[i]
                if h < 0.0:
                    h = 0.0
                elif h > 1.0:
                    h = 1.0
        befores[:, j] = col_out
        finals[j] = h
    return befores, finals


def batch_largest_runs(values: np.ndarray, margins: np.ndarray) -> np.ndarray:
    """Winning agreement cluster of each row, as a bool member mask.

    Row-parallel twin of ``sorted_runs(values[i], margins[i])[0]``: for
    every row of the dense ``(B, c)`` block, marks the members of the
    largest run of margin-chained sorted values, ties broken by the
    smallest original index — exactly the scalar ordering
    ``(-run.size, run.min())``.
    """
    n_rows, c = values.shape
    if c == 1:
        return np.ones((n_rows, 1), dtype=bool)
    order = np.argsort(values, axis=1, kind="stable")
    ranked = np.take_along_axis(values, order, axis=1)
    run_id = np.zeros((n_rows, c), dtype=np.int64)
    np.cumsum(np.diff(ranked, axis=1) > margins[:, None], axis=1, out=run_id[:, 1:])
    # Tag runs globally (row r's runs live in slots [r*c, (r+1)*c)), then
    # rank each row's runs by (-size, min original index) with one
    # integer key: sizes dominate because the index term stays < c+1.
    flat_ids = (run_id + (np.arange(n_rows) * c)[:, None]).ravel()
    sizes = np.bincount(flat_ids, minlength=n_rows * c)
    min_orig = np.full(n_rows * c, c, dtype=np.int64)
    np.minimum.at(min_orig, flat_ids, order.ravel())
    keys = sizes * (c + 1) + (c - 1 - min_orig)
    best = np.argmax(keys.reshape(n_rows, c), axis=1)
    winners = np.zeros((n_rows, c), dtype=bool)
    np.put_along_axis(winners, order, run_id == best[:, None], axis=1)
    return winners


def batch_cluster_runs(
    matrix: np.ndarray,
    margins: np.ndarray,
    mask: np.ndarray,
    counts: np.ndarray,
    rows: np.ndarray,
) -> np.ndarray:
    """Full-width winning-cluster membership for each selected row.

    Count-bucketed wrapper over :func:`batch_largest_runs`: returns a
    rounds × modules bool matrix marking, for every selected row, the
    present modules that belong to the largest agreement run (False
    everywhere else).  The result doubles as a presence mask, so the
    winning values can be collated with :func:`batch_collate` using the
    winner mask in place of ``mask`` — the compaction then reproduces
    ``values[np.sort(runs[0])]`` in original module order.
    """
    n_rounds, n_modules = matrix.shape
    winners = np.zeros((n_rounds, n_modules), dtype=bool)
    selected = np.flatnonzero(rows & (counts > 0))
    for count, sel in _count_buckets(counts, selected):
        sub_mask = mask[sel]
        compact = matrix[sel][sub_mask].reshape(sel.size, count)
        won = batch_largest_runs(compact, margins[sel])
        scatter = np.zeros((sel.size, n_modules), dtype=bool)
        scatter[sub_mask] = won.ravel()
        winners[sel] = scatter
    return winners


def batch_masked_mean(
    matrix: np.ndarray,
    mask: np.ndarray,
    counts: np.ndarray,
    rows: np.ndarray,
) -> np.ndarray:
    """Mean of each selected row's present entries (NaN elsewhere).

    Count-bucketed like :func:`batch_collate`, so each row reduces with
    the same pairwise-summation grouping as ``present_values.mean()``
    on the scalar path.
    """
    n_rounds, n_modules = matrix.shape
    out = np.full(n_rounds, np.nan)
    dense = rows & (counts == n_modules) & (n_modules > 0)
    sel = np.flatnonzero(dense)
    if sel.size:
        out[sel] = matrix[sel].mean(axis=1)
    ragged_idx = np.flatnonzero(rows & (counts > 0) & ~dense)
    for count, sel in _count_buckets(counts, ragged_idx):
        compact = matrix[sel][mask[sel]].reshape(sel.size, count)
        out[sel] = compact.mean(axis=1)
    return out


def batch_weighted_collate(
    method: str,
    matrix: np.ndarray,
    weights: np.ndarray,
    mask: np.ndarray,
    counts: np.ndarray,
    rows: np.ndarray,
) -> np.ndarray:
    """Weighted collation of each selected row (NaN elsewhere).

    Row-parallel twin of ``collate_fast(method, values, weights)`` over
    the present entries of each selected row, including its degenerate
    conventions (all-zero weights fall back to the plain mean / uniform
    median / all-eligible nearest-neighbour).  Dense rows run as one
    block; ragged rows are count-bucketed like :func:`batch_collate`.
    """
    n_rounds, n_modules = matrix.shape
    out = np.full(n_rounds, np.nan)
    dense = rows & (counts == n_modules) & (n_modules > 0)
    sel = np.flatnonzero(dense)
    if sel.size:
        out[sel] = _dense_weighted_collate(method, matrix[sel], weights[sel])
    ragged_idx = np.flatnonzero(rows & (counts > 0) & ~dense)
    for count, sel in _count_buckets(counts, ragged_idx):
        sub_mask = mask[sel]
        compact = matrix[sel][sub_mask].reshape(sel.size, count)
        compact_w = weights[sel][sub_mask].reshape(sel.size, count)
        out[sel] = _dense_weighted_collate(method, compact, compact_w)
    return out


def _dense_weighted_collate(
    method: str, values: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Weighted collation of each row of a dense ``rows × c`` block.

    Walks the exact expression trees of :func:`_weighted_mean`,
    :func:`_mean_nearest_neighbour` and :func:`_weighted_median` row
    by row (axis-1 reductions of the ``(B, c)`` block reproduce the
    1-D operand grouping — see the module docstring).
    """
    n_rows, c = values.shape
    totals = weights.sum(axis=1)
    zero_total = totals == 0.0
    if method == "MEDIAN":
        # Zero-total rows vote with uniform weights, like the scalar path.
        effective = np.where(zero_total[:, None], 1.0, weights)
        order = np.argsort(values, axis=1, kind="stable")
        ranked = np.take_along_axis(values, order, axis=1)
        cumulative = np.cumsum(np.take_along_axis(effective, order, axis=1), axis=1)
        cutoff = cumulative[:, -1] / 2.0
        # Count-of-smaller equals np.searchsorted(cumulative, cutoff)
        # with side="left" on each (non-decreasing) cumulative row.
        idx = np.minimum((cumulative < cutoff[:, None]).sum(axis=1), c - 1)
        return ranked[np.arange(n_rows), idx]
    with np.errstate(invalid="ignore", divide="ignore"):
        centres = (values * weights).sum(axis=1) / totals
    if zero_total.any():
        centres[zero_total] = values[zero_total].mean(axis=1)
    if method == "MEAN":
        return centres
    # MEAN_NEAREST_NEIGHBOR: first positive-weight value closest to the
    # centre; rows with no positive weight consider every value.
    eligible = weights > 0.0
    none_eligible = ~eligible.any(axis=1)
    if none_eligible.any():
        eligible[none_eligible] = True
    distances = np.abs(values - centres[:, None])
    distances[~eligible] = np.inf
    best = np.argmin(distances, axis=1)
    return values[np.arange(n_rows), best]


def collate_fast(
    method: str,
    values: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Collate one round's values, bit-identical to :func:`collate`.

    ``weights=None`` means uniform weights.  Skips the defensive
    re-validation in ``collation._as_arrays``; callers must pass
    finite values and non-negative weights.
    """
    if method == "MEAN":
        return _weighted_mean(values, weights)
    if method == "MEAN_NEAREST_NEIGHBOR":
        return _mean_nearest_neighbour(values, weights)
    if method == "MEDIAN":
        return _weighted_median(values, weights)
    raise ValueError(f"no fast collation for method {method!r}")
