"""Vectorized voting kernels for batched fusion.

These functions operate on a whole rounds × modules float matrix at
once (NaN marks a missing reading) and back
:meth:`repro.fusion.engine.FusionEngine.process_batch`.

Bit-identity contract
---------------------
Every kernel reproduces the scalar pipeline in :mod:`repro.voting`
*bit for bit*, not merely to within tolerance:

* dense rows (no NaN) are evaluated with the same IEEE expression
  trees as the per-round functions, vectorized across rounds;
* ragged rows (with NaN) are **count-bucketed**: rows with the same
  present-count ``c`` are compacted into one dense ``buckets × c``
  submatrix and run through the same vectorized expression trees.
  Bit-identity survives the compaction because NumPy's pairwise
  summation groups operands by *axis length* — reducing a ``(B, c)``
  or ``(B, c, c)`` block along its last axis walks exactly the
  summation tree the per-round helpers walk on a length-``c`` row,
  whereas summing a NaN-masked full-width row would not (the grouping
  changes at >= 8 modules).

`collate_fast` mirrors :func:`repro.voting.collation.collate` for the
numeric methods while skipping input re-validation (batch callers
guarantee non-negative weights).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = [
    "BATCHABLE_COLLATIONS",
    "batch_agreement_scores",
    "batch_collate",
    "batch_dynamic_margins",
    "collate_fast",
    "collation_function",
    "sorted_runs",
]

#: Collation methods with a bit-identical fast path (WEIGHTED_MAJORITY
#: tallies hashable values and is handled by the plurality kernel).
BATCHABLE_COLLATIONS = ("MEAN", "MEAN_NEAREST_NEIGHBOR", "MEDIAN")

# Cap the transient (chunk, M, M) distance tensor at ~32 MB of floats.
_CHUNK_ELEMENTS = 4_000_000


def batch_dynamic_margins(
    matrix: np.ndarray,
    error: float,
    min_margin: float,
    counts: np.ndarray,
) -> np.ndarray:
    """Per-round dynamic margins, identical to :func:`dynamic_margin`.

    Rounds with zero present values get ``min_margin`` (the scalar
    helper's empty-input convention).
    """
    n_rounds = matrix.shape[0]
    margins = np.full(n_rounds, float(min_margin))
    populated = counts > 0
    if np.any(populated):
        with np.errstate(all="ignore"):
            refs = np.nanmedian(matrix[populated], axis=1)
        margins[populated] = np.maximum(np.abs(refs) * error, min_margin)
    return margins


def _count_buckets(counts: np.ndarray, selected: np.ndarray):
    """Group the ``selected`` row indices by their present-count."""
    bucket_counts = counts[selected]
    for count in np.unique(bucket_counts):
        yield int(count), selected[bucket_counts == count]


def _dense_agreement_scores(
    values: np.ndarray,
    margins: np.ndarray,
    kind: str,
    soft_threshold: float,
) -> np.ndarray:
    """Agreement scores for a dense ``rows × c`` block (c >= 2).

    Chunked so the transient ``(chunk, c, c)`` distance tensor stays
    bounded; walks the exact expression trees of
    :func:`binary_agreement_matrix` / :func:`soft_agreement_matrix` +
    :func:`agreement_scores`.
    """
    n_rows, c = values.shape
    out = np.empty((n_rows, c))
    step = max(1, _CHUNK_ELEMENTS // (c * c))
    diag = np.arange(c)
    for start in range(0, n_rows, step):
        sub = values[start : start + step]
        margin = margins[start : start + step]
        distances = np.abs(sub[:, :, None] - sub[:, None, :])
        if kind == "binary" or soft_threshold == 1:
            agreement = (distances <= margin[:, None, None]).astype(float)
        else:
            ramp = (soft_threshold - 1.0) * margin
            with np.errstate(divide="ignore", invalid="ignore"):
                agreement = np.clip(
                    (soft_threshold * margin[:, None, None] - distances)
                    / ramp[:, None, None],
                    0.0,
                    1.0,
                )
            degenerate = margin == 0
            if np.any(degenerate):
                agreement[degenerate] = (
                    distances[degenerate] <= 0.0
                ).astype(float)
        out[start : start + step] = (
            agreement.sum(axis=2) - agreement[:, diag, diag]
        ) / (c - 1)
    return out


def batch_agreement_scores(
    matrix: np.ndarray,
    margins: np.ndarray,
    kind: str,
    soft_threshold: float,
    mask: np.ndarray,
    counts: np.ndarray,
    rows: np.ndarray,
) -> np.ndarray:
    """Per-module agreement scores for the selected ``rows``.

    Returns a rounds × modules array holding each present module's
    agreement score (NaN where the module is absent or the row was not
    selected).  Dense rows run through a chunked 3-D distance tensor;
    ragged rows are count-bucketed, compacted into dense ``buckets × c``
    submatrices and run through the *same* expression trees — see the
    module docstring for why that preserves bit-identity with the
    per-round helpers.
    """
    n_rounds, n_modules = matrix.shape
    scores = np.full((n_rounds, n_modules), np.nan)

    singles = rows & (counts == 1)
    if np.any(singles):
        scores[singles[:, None] & mask] = 1.0

    if n_modules >= 2:
        dense = np.flatnonzero(rows & (counts == n_modules))
        if dense.size:
            scores[dense] = _dense_agreement_scores(
                matrix[dense], margins[dense], kind, soft_threshold
            )

        ragged = np.flatnonzero(rows & (counts >= 2) & (counts < n_modules))
        for count, sel in _count_buckets(counts, ragged):
            sub_mask = mask[sel]
            compact = matrix[sel][sub_mask].reshape(sel.size, count)
            compact_scores = _dense_agreement_scores(
                compact, margins[sel], kind, soft_threshold
            )
            scatter = np.full((sel.size, n_modules), np.nan)
            scatter[sub_mask] = compact_scores.ravel()
            scores[sel] = scatter
    return scores


def batch_collate(
    method: str,
    matrix: np.ndarray,
    mask: np.ndarray,
    counts: np.ndarray,
    rows: np.ndarray,
) -> np.ndarray:
    """Unweighted collation of each selected row (NaN elsewhere).

    Matches ``collate(method, present_values)`` exactly: MEAN divides
    by the count, MEDIAN takes the *lower* median (the element
    ``weighted_median`` selects with equal weights), and
    MEAN_NEAREST_NEIGHBOR returns the first value closest to the mean.
    """
    n_rounds, n_modules = matrix.shape
    out = np.full(n_rounds, np.nan)
    dense = rows & (counts == n_modules) & (n_modules > 0)
    ragged = rows & (counts > 0) & ~dense
    sel = np.flatnonzero(dense)
    if sel.size:
        out[sel] = _dense_collate(method, matrix[sel])
    ragged_idx = np.flatnonzero(ragged)
    for count, sel in _count_buckets(counts, ragged_idx):
        compact = matrix[sel][mask[sel]].reshape(sel.size, count)
        out[sel] = _dense_collate(method, compact)
    return out


def _dense_collate(method: str, sub: np.ndarray) -> np.ndarray:
    """Collate each row of a dense ``rows × c`` block.

    Row-parallel twins of the scalar helpers: MEAN divides by the count,
    MEDIAN partitions to the lower-median element (the one
    ``weighted_median`` selects with equal weights), and
    MEAN_NEAREST_NEIGHBOR takes the first value closest to the mean
    (``np.argmin`` returns the first minimum, like the scalar path).
    """
    c = sub.shape[1]
    if method == "MEAN":
        return sub.sum(axis=1) / float(c)
    if method == "MEDIAN":
        k = (c + 1) // 2 - 1  # lower median: ceil(c/2)-1
        return np.partition(sub, k, axis=1)[:, k]
    # MEAN_NEAREST_NEIGHBOR
    centres = sub.sum(axis=1) / float(c)
    nearest = np.argmin(np.abs(sub - centres[:, None]), axis=1)
    return sub[np.arange(sub.shape[0]), nearest]


def collation_function(method: str):
    """The per-round fast collation callable for ``method``.

    Returns a ``(values, weights) -> float`` callable so hot loops can
    hoist the method dispatch out of the per-round body.
    """
    if method == "MEAN":
        return _weighted_mean
    if method == "MEAN_NEAREST_NEIGHBOR":
        return _mean_nearest_neighbour
    if method == "MEDIAN":
        return _weighted_median
    raise ValueError(f"no fast collation for method {method!r}")


def sorted_runs(values: np.ndarray, margin: float) -> List[np.ndarray]:
    """Agreement clusters of 1-D ``values``, as arrays of indices.

    Exactly equivalent to the connected components of the binary
    agreement graph used by :func:`cluster_by_agreement`: in sorted
    order an edge can only join consecutive values, so each component
    is a maximal run whose consecutive gaps are all <= ``margin``.
    Runs are ordered largest-first with ties broken by the smallest
    original index, matching the scalar clustering helper.
    """
    order = np.argsort(values, kind="stable")
    if order.size == 0:
        return []
    sorted_values = values[order]
    splits = np.flatnonzero(np.diff(sorted_values) > margin) + 1
    runs = np.split(order, splits)
    runs.sort(key=lambda run: (-run.size, int(run.min())))
    return runs


def _weighted_mean(values: np.ndarray, weights: Optional[np.ndarray]) -> float:
    if weights is None:
        # x * 1.0 == x bitwise and sum(ones) is the exact count, so the
        # unweighted mean reduces to sum/len with identical rounding.
        return float(values.sum() / float(values.size))
    total = weights.sum()
    if total == 0:
        return float(values.mean())
    return float((values * weights).sum() / total)


def _mean_nearest_neighbour(
    values: np.ndarray, weights: Optional[np.ndarray]
) -> float:
    centre = _weighted_mean(values, weights)
    if weights is None:
        return float(values[np.argmin(np.abs(values - centre))])
    eligible = np.flatnonzero(weights > 0)
    if eligible.size == 0:
        eligible = np.arange(values.size)
    best = eligible[np.argmin(np.abs(values[eligible] - centre))]
    return float(values[best])


def _weighted_median(
    values: np.ndarray, weights: Optional[np.ndarray]
) -> float:
    if weights is None or weights.sum() == 0:
        weights = np.ones_like(values)
    order = np.argsort(values, kind="stable")
    ranked = values[order]
    cumulative = np.cumsum(weights[order])
    cutoff = cumulative[-1] / 2.0
    idx = min(int(np.searchsorted(cumulative, cutoff)), ranked.size - 1)
    return float(ranked[idx])


def collate_fast(
    method: str,
    values: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Collate one round's values, bit-identical to :func:`collate`.

    ``weights=None`` means uniform weights.  Skips the defensive
    re-validation in ``collation._as_arrays``; callers must pass
    finite values and non-negative weights.
    """
    if method == "MEAN":
        return _weighted_mean(values, weights)
    if method == "MEAN_NEAREST_NEIGHBOR":
        return _mean_nearest_neighbour(values, weights)
    if method == "MEDIAN":
        return _weighted_median(values, weights)
    raise ValueError(f"no fast collation for method {method!r}")
