"""Stateless voters: no history, no agreement weighting.

These are the baselines the paper compares against ("avg." in Fig. 6,
the per-stack average in Fig. 7-b) and the 50-microsecond "stateless
vote" of the latency claim in §7.
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..types import Round, VoteOutcome
from .base import Voter
from .collation import collate, weighted_plurality


class CollationVoter(Voter):
    """Generic stateless voter: apply one collation method, unweighted.

    This is the 50-microsecond "stateless vote" of the paper's latency
    claim: no agreement matrix, no history, just a collation over the
    present values.
    """

    name = "collation"
    stateful = False

    def __init__(self, collation: str = "MEAN"):
        self.collation = collation.upper()
        self.name = f"stateless_{self.collation.lower()}"

    def vote(self, voting_round: Round) -> VoteOutcome:
        voting_round.require_nonempty()
        values = [float(r.value) for r in voting_round.present]
        return VoteOutcome(
            round_number=voting_round.number,
            value=collate(self.collation, values),
            weights={r.module: 1.0 for r in voting_round.present},
        )

    def batch_kernel(self) -> Optional[str]:
        """``"stateless"`` for the numeric collations (fully vectorized)."""
        from .kernels import BATCHABLE_COLLATIONS

        if type(self).vote is not CollationVoter.vote:
            return None
        if self.collation not in BATCHABLE_COLLATIONS:
            return None
        return "stateless"


class MeanVoter(CollationVoter):
    """Plain unweighted average of the present values."""

    def __init__(self):
        super().__init__("MEAN")
        self.name = "average"


class MedianVoter(CollationVoter):
    """Median of the present values — robust to a minority of outliers."""

    def __init__(self):
        super().__init__("MEDIAN")
        self.name = "median"


class PluralityVoter(Voter):
    """Unweighted plurality over (hashable) candidate values.

    Primarily useful for categorical data; numeric values work too when
    exact repetition is expected.  Ties break toward the previous output
    when one exists (the paper's tie-breaking example in §7), otherwise
    :class:`~repro.exceptions.NoMajorityError` propagates.
    """

    name = "plurality"
    stateful = True  # remembers the last output for tie-breaking

    def __init__(self):
        self._last_output: Optional[Hashable] = None

    def vote(self, voting_round: Round) -> VoteOutcome:
        voting_round.require_nonempty()
        values = [r.value for r in voting_round.present]
        winner, tallies = weighted_plurality(values, tie_break=self._last_output)
        self._last_output = winner
        return VoteOutcome(
            round_number=voting_round.number,
            value=winner,
            weights={r.module: 1.0 for r in voting_round.present},
            diagnostics={"tallies": tallies},
        )

    def batch_kernel(self) -> Optional[str]:
        """``"plurality"`` — a sequential tally loop (the tie-break is a
        genuine cross-round dependency) without Round allocation."""
        if type(self).vote is not PluralityVoter.vote:
            return None
        return "plurality"

    def reset(self) -> None:
        self._last_output = None
