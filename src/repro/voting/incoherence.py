"""Incoherence-scored adaptive fault masking.

Implements the adaptive masking scheme of "Adaptive Fault Masking With
Incoherence Scoring" (Alagöz, PAPERS.md): every module carries an
*incoherence score* that rises when its reading falls outside the
dynamic agreement margin around a robust reference (the weighted
median of the currently unmasked readings) and decays while it
agrees.  Judging incoherence against the median rather than the fused
output keeps a single large-offset module from dragging the reference
far enough to indict the honest majority.  A module whose score crosses ``mask_threshold`` is masked —
its readings stop contributing to the fused value — until sustained
coherence drives the score back below ``rejoin_threshold`` (hysteresis,
so a flip-flopping module cannot oscillate in and out of the vote).

Unlike the history-aware voters this one keeps no
:class:`~repro.voting.history.HistoryRecords`; its state is the score
table itself, which makes the regulation parameters (``rise``,
``decay``, the two thresholds and ``score_cap``) the complete
description of its adaptivity.

The masking decision for round *t* is taken from the scores *entering*
the round: the fused output is collated from the currently unmasked
modules, incoherence is judged against that output, and the updated
scores/masks take effect in round *t + 1*.  Modules absent from a round
keep their score and mask untouched, so a masked sensor stays masked
through an outage and must re-earn trust after it rejoins.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..types import Round, VoteOutcome
from .agreement import dynamic_margin
from .base import Voter, VoterParams
from .collation import collate, weighted_median

__all__ = ["IncoherenceMaskingVoter"]


class IncoherenceMaskingVoter(Voter):
    """Numeric voter with incoherence-scored adaptive masking.

    Args:
        params: shared numeric parameters; ``error``/``min_margin``
            shape the dynamic margin and ``collation`` picks the fuse
            (``WEIGHTED_MAJORITY`` is rejected — masking is weight
            zeroing, not tallying).
        rise: score increment applied when a module's reading is
            incoherent (outside the margin around the fused output).
        decay: score decrement applied while a module is coherent.
        mask_threshold: score at (or above) which a module is masked.
        rejoin_threshold: score at (or below) which a masked module is
            readmitted; must be strictly below ``mask_threshold`` so the
            mask has hysteresis.
        score_cap: upper bound on the score, limiting how long a
            recovered module needs to re-earn trust.
    """

    name = "incoherence"
    stateful = True

    def __init__(
        self,
        params: Optional[VoterParams] = None,
        *,
        rise: float = 0.35,
        decay: float = 0.1,
        mask_threshold: float = 1.0,
        rejoin_threshold: float = 0.25,
        score_cap: float = 2.0,
    ):
        self.params = params or self.default_params()
        if self.params.collation.upper() == "WEIGHTED_MAJORITY":
            raise ConfigurationError(
                "incoherence masking is numeric; WEIGHTED_MAJORITY "
                "collation is not supported"
            )
        if rise <= 0:
            raise ConfigurationError(f"rise must be positive, got {rise}")
        if decay < 0:
            raise ConfigurationError(f"decay must be non-negative, got {decay}")
        if mask_threshold <= 0:
            raise ConfigurationError(
                f"mask_threshold must be positive, got {mask_threshold}"
            )
        if not 0.0 <= rejoin_threshold < mask_threshold:
            raise ConfigurationError(
                "rejoin_threshold must be in [0, mask_threshold), got "
                f"{rejoin_threshold} against mask_threshold={mask_threshold}"
            )
        if score_cap < mask_threshold:
            raise ConfigurationError(
                "score_cap must be at least mask_threshold, got "
                f"{score_cap} against mask_threshold={mask_threshold}"
            )
        self.rise = float(rise)
        self.decay = float(decay)
        self.mask_threshold = float(mask_threshold)
        self.rejoin_threshold = float(rejoin_threshold)
        self.score_cap = float(score_cap)
        self._scores: Dict[str, float] = {}
        self._masked: Dict[str, bool] = {}

    @classmethod
    def default_params(cls) -> VoterParams:
        """Masking zeroes weights itself; no record-based elimination."""
        return VoterParams(elimination="none")

    # -- introspection -----------------------------------------------------

    def incoherence_scores(self) -> Dict[str, float]:
        """Current per-module incoherence scores (copy)."""
        return dict(self._scores)

    def masked_modules(self) -> Tuple[str, ...]:
        """Currently masked module names, sorted."""
        return tuple(sorted(m for m, flag in self._masked.items() if flag))

    # -- shared scalar/batch core ------------------------------------------

    def _ensure(self, modules: Sequence[str]) -> None:
        for module in modules:
            if module not in self._scores:
                self._scores[module] = 0.0
                self._masked[module] = False

    def _apply(
        self, names: List[str], values: List[float], margin: float
    ) -> Tuple[float, List[float]]:
        """One round of mask-collate-score; returns (output, weights).

        Both the scalar :meth:`vote` path and the batch kernel call this
        method, so the two paths are bit-identical by construction.
        """
        weights = [0.0 if self._masked[m] else 1.0 for m in names]
        output = collate(self.params.collation, values, weights)
        # Robust scoring reference: the unmasked median (uniform-weight
        # fallback when everything is masked), so one faulty module
        # cannot shift the reference onto the honest majority.
        reference = weighted_median(values, weights)
        for module, value in zip(names, values):
            if abs(value - reference) > margin:
                score = min(self._scores[module] + self.rise, self.score_cap)
            else:
                score = max(self._scores[module] - self.decay, 0.0)
            self._scores[module] = score
            if self._masked[module]:
                if score <= self.rejoin_threshold:
                    self._masked[module] = False
            elif score >= self.mask_threshold:
                self._masked[module] = True
        return output, weights

    def _outcome(
        self,
        number: int,
        names: List[str],
        values: List[float],
        weights: List[float],
        margin: float,
        output: float,
    ) -> VoteOutcome:
        return VoteOutcome(
            round_number=number,
            value=output,
            weights=dict(zip(names, weights)),
            eliminated=tuple(
                m for m, w in zip(names, weights) if w == 0.0
            ),
            diagnostics={
                "margin": margin,
                "incoherence": {m: self._scores[m] for m in names},
                "masked": self.masked_modules(),
            },
        )

    # -- Voter interface ---------------------------------------------------

    def vote(self, voting_round: Round) -> VoteOutcome:
        voting_round.require_nonempty()
        present = voting_round.present
        names = [r.module for r in present]
        values = [float(r.value) for r in present]
        self._ensure(voting_round.modules)
        margin = dynamic_margin(
            values, self.params.error, self.params.min_margin
        )
        output, weights = self._apply(names, values, margin)
        return self._outcome(
            voting_round.number, names, values, weights, margin, output
        )

    def reset(self) -> None:
        self._scores.clear()
        self._masked.clear()

    def batch_kernel(self) -> Optional[str]:
        """``"incoherence"`` when the scoring core is unmodified.

        The batch kernel replays :meth:`_apply`/:meth:`_outcome` with
        vectorized margin precomputation, so any subclass override of
        the core disables it (same guard as
        :meth:`HistoryAwareVoter.batch_kernel`).
        """
        cls = type(self)
        if (
            cls.vote is not IncoherenceMaskingVoter.vote
            or cls._apply is not IncoherenceMaskingVoter._apply
            or cls._ensure is not IncoherenceMaskingVoter._ensure
            or cls._outcome is not IncoherenceMaskingVoter._outcome
        ):
            return None
        return "incoherence"
