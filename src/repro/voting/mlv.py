"""Maximum-Likelihood Voting [Leung 1995] — extension algorithm.

§6 of the paper lists MLV among the algorithms VDX *cannot yet* define
because it parameterises the candidate values themselves.  We implement
it anyway as an extension so the limitation can be demonstrated and the
algorithm compared in the ablation benchmarks.

MLV treats each module as a noisy channel with reliability ``p_i`` (here
derived from the history record, floored away from 0/1 to keep
likelihoods finite).  Candidate *outputs* are the agreement groups of
the round; the group maximising the likelihood of the observed votes —
members correct with probability ``p_i``, non-members wrong with
probability ``1 - p_i`` — wins, and the group is collated to a value.
"""

from __future__ import annotations

import math
from ..clustering.agreement_clustering import cluster_by_agreement
from ..types import Round, VoteOutcome
from .agreement import agreement_scores
from .base import HistoryAwareVoter, VoterParams
from .collation import collate


class MaximumLikelihoodVoter(HistoryAwareVoter):
    """MLV over agreement groups with history-derived reliabilities."""

    name = "mlv"
    agreement_kind = "binary"
    weight_source = "history"
    eliminates = False

    #: Reliability clamp keeping log-likelihood terms finite.
    _P_FLOOR = 0.01

    @classmethod
    def default_params(cls) -> VoterParams:
        return VoterParams(elimination="none", collation="MEAN")

    def vote(self, voting_round: Round) -> VoteOutcome:
        present = voting_round.present
        modules = [r.module for r in present]
        self.history.ensure(voting_round.modules)
        if not self._quorum_reached(voting_round):
            return VoteOutcome(
                round_number=voting_round.number,
                value=None,
                history=self.history.snapshot(),
                quorum_reached=False,
            )
        voting_round.require_nonempty()
        values = [float(r.value) for r in present]
        clustering = cluster_by_agreement(
            values,
            error=self.params.error,
            soft_threshold=self.params.soft_threshold,
            min_margin=self.params.min_margin,
        )
        reliabilities = {
            m: min(max(self.history.get(m), self._P_FLOOR), 1.0 - self._P_FLOOR)
            for m in modules
        }
        best_group = clustering.largest
        best_likelihood = -math.inf
        for group in clustering.clusters:
            members = set(group)
            likelihood = 0.0
            for i, module in enumerate(modules):
                p = reliabilities[module]
                likelihood += math.log(p) if i in members else math.log(1.0 - p)
            if likelihood > best_likelihood:
                best_likelihood = likelihood
                best_group = group
        winners = set(best_group)
        weights = {m: (1.0 if i in winners else 0.0) for i, m in enumerate(modules)}
        output = collate(self.params.collation, [values[i] for i in best_group])
        matrix = self._agreement_matrix(values)
        scores = dict(zip(modules, agreement_scores(matrix)))
        self.history.update(scores)
        return VoteOutcome(
            round_number=voting_round.number,
            value=output,
            weights=weights,
            history=self.history.snapshot(),
            agreement=scores,
            eliminated=tuple(m for i, m in enumerate(modules) if i not in winners),
            diagnostics={"log_likelihood": best_likelihood},
        )
