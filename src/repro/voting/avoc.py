"""AVOC: Accurate Voting with Clustering — the paper's contribution (§5).

AVOC builds atop the Hybrid voter.  History-based voters normally fall
back to a plain average while no usable history exists, which lets a
faulty module skew the first rounds (the startup spike of Fig. 6-e/f).
AVOC instead runs the lightweight agreement-clustering step when the
records indicate either a **fresh set** (all records 1) or a **system
failure / extreme data spike** (all records 0):

1. values within the scaled soft-dynamic margin of each other are
   grouped, and the largest group defines the round output (collated
   with the host algorithm's method — mean-nearest-neighbour here);
2. the clustering verdict *seeds the history records* — members of the
   winning cluster score full agreement, outliers score zero — so the
   very next round already eliminates the outlier module.

That second point is the "bootstrap boost": in the paper's UC-1 fault
experiment the voter returns to its pre-error output almost instantly
even though clustering runs only once, converging ~4× faster than plain
Hybrid.
"""

from __future__ import annotations

from typing import Optional

from ..clustering.agreement_clustering import cluster_by_agreement
from ..types import Round, VoteOutcome
from .base import HistoryAwareVoter, VoterParams
from .collation import collate
from .hybrid import HybridVoter


class AvocVoter(HybridVoter):
    """Hybrid voting with clustering-based history bootstrapping."""

    name = "avoc"

    #: Records at or below this are considered collapsed when checking
    #: the "all records 0" failure trigger (EMA records approach zero
    #: asymptotically, so an exact-zero test would never fire; with the
    #: default learning rate, 0.05 corresponds to roughly a dozen
    #: consecutive total-disagreement rounds).
    FAILURE_TOLERANCE = 0.05

    @classmethod
    def default_params(cls) -> VoterParams:
        return VoterParams(
            elimination="fixed",
            elimination_threshold=0.5,
            collation="MEAN_NEAREST_NEIGHBOR",
            history_policy="ema",
            learning_rate=0.25,
            bootstrap_mode="auto",
        )

    @property
    def bootstraps_used(self) -> int:
        return getattr(self, "_bootstraps_used", 0)

    def _should_bootstrap(self, modules) -> bool:
        mode = self.params.bootstrap_mode
        if mode == "never" or not modules:
            return False
        if mode == "always":
            return True
        fresh = self.history.update_count == 0 and self.history.all_fresh(modules)
        failed = self.history.all_failed(modules, tolerance=self.FAILURE_TOLERANCE)
        return fresh or failed

    def _bootstrap_vote(self, voting_round: Round) -> VoteOutcome:
        present = voting_round.present
        modules = [r.module for r in present]
        values = [float(r.value) for r in present]
        clustering = cluster_by_agreement(
            values,
            error=self.params.error,
            soft_threshold=self.params.soft_threshold,
            min_margin=self.params.min_margin,
        )
        winners = set(clustering.largest)
        weights = {m: (1.0 if i in winners else 0.0) for i, m in enumerate(modules)}
        winning_values = [values[i] for i in clustering.largest]
        output = collate(self.params.collation, winning_values)
        # Seed the records directly from cluster membership: members are
        # fully trusted, outliers fully distrusted.  This is the
        # "bootstrap boost" — the very next round already eliminates the
        # outlier module instead of waiting for its record to decay.
        scores = {m: (1.0 if i in winners else 0.0) for i, m in enumerate(modules)}
        self.history.seed(scores)
        self._bootstraps_used = self.bootstraps_used + 1
        return VoteOutcome(
            round_number=voting_round.number,
            value=output,
            weights=weights,
            history=self.history.snapshot(),
            agreement=scores,
            eliminated=tuple(m for i, m in enumerate(modules) if i not in winners),
            used_bootstrap=True,
            diagnostics={
                "cluster_sizes": [len(c) for c in clustering.clusters],
                "margin": clustering.margin,
            },
        )

    def batch_kernel(self) -> Optional[str]:
        """``"history"`` — the batch kernel natively replays the AVOC
        bootstrap (sorted-runs clustering + history seeding), so AVOC's
        own hook overrides are expected; further subclassing disables
        the kernel just like in the base class."""
        from .kernels import BATCHABLE_COLLATIONS

        cls = type(self)
        if (
            cls.vote is not HistoryAwareVoter.vote
            or cls._agreement_matrix is not HistoryAwareVoter._agreement_matrix
            or cls._weights is not HistoryAwareVoter._weights
            or cls._eliminated is not HistoryAwareVoter._eliminated
            or cls._quorum_reached is not HistoryAwareVoter._quorum_reached
            or cls._should_bootstrap is not AvocVoter._should_bootstrap
            or cls._bootstrap_vote is not AvocVoter._bootstrap_vote
        ):
            return None
        if self.history.store is not None:
            return None
        if self.params.collation.upper() not in BATCHABLE_COLLATIONS:
            return None
        return "history"

    def reset(self) -> None:
        super().reset()
        self._bootstraps_used = 0
