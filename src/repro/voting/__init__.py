"""Voting algorithms for redundant-sensor data fusion.

This package implements the algorithm zoo surveyed and contributed by the
paper (§4–§5):

* stateless voters — plain mean, median, plurality (no history);
* ``Standard`` — history-based weighted average [Latif-Shabgahi 2001];
* ``Me`` — module-elimination weighted average;
* ``Sdt`` — soft-dynamic-threshold weighted average [Das 2010];
* ``Hybrid`` — Me + Sdt with agreement-based weights [Alahmadi 2012];
* ``COV`` — clustering-only voting (the AVOC clustering step alone);
* ``AVOC`` — Hybrid with clustering-based history bootstrapping (the
  paper's contribution);
* ``MLV`` — maximum-likelihood voting (extension, §6 limitations);
* categorical weighted-majority voting (VDX categorical mode);
* ``incoherence`` — incoherence-scored adaptive masking [Alagöz];
* ``probabilistic`` — symbol-prior probabilistic voting for the
  categorical path [Alagöz].

All voters share the :class:`~repro.voting.base.Voter` interface: feed
:class:`~repro.types.Round` objects to :meth:`vote` and receive
:class:`~repro.types.VoteOutcome` objects back.
"""

from .base import Voter, VoterParams
from .agreement import (
    agreement_scores,
    binary_agreement_matrix,
    dynamic_margin,
    pairwise_distances,
    soft_agreement_matrix,
)
from .history import HistoryRecords
from .collation import (
    collate,
    mean_nearest_neighbour,
    weighted_mean,
    weighted_median,
)
from .stateless import MeanVoter, MedianVoter, PluralityVoter
from .standard import StandardVoter
from .module_elimination import ModuleEliminationVoter
from .soft_dynamic import SoftDynamicThresholdVoter
from .hybrid import HybridVoter
from .clustering_voter import ClusteringOnlyVoter
from .avoc import AvocVoter
from .mlv import MaximumLikelihoodVoter
from .categorical import CategoricalMajorityVoter
from .incoherence import IncoherenceMaskingVoter
from .probabilistic import ProbabilisticSymbolVoter
from .registry import (
    available_algorithms,
    categorical_algorithms,
    create_voter,
    register_voter,
)

__all__ = [
    "Voter",
    "VoterParams",
    "agreement_scores",
    "binary_agreement_matrix",
    "dynamic_margin",
    "pairwise_distances",
    "soft_agreement_matrix",
    "HistoryRecords",
    "collate",
    "mean_nearest_neighbour",
    "weighted_mean",
    "weighted_median",
    "MeanVoter",
    "MedianVoter",
    "PluralityVoter",
    "StandardVoter",
    "ModuleEliminationVoter",
    "SoftDynamicThresholdVoter",
    "HybridVoter",
    "ClusteringOnlyVoter",
    "AvocVoter",
    "MaximumLikelihoodVoter",
    "CategoricalMajorityVoter",
    "IncoherenceMaskingVoter",
    "ProbabilisticSymbolVoter",
    "available_algorithms",
    "categorical_algorithms",
    "create_voter",
    "register_voter",
]
