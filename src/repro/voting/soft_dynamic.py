"""Soft Dynamic Threshold history-based weighted average (Sdt) [Das 2010].

Refines the binary agreement definition: values that miss the accepted
error threshold but fall within ``soft_threshold`` times it receive a
partial agreement score between 1 and 0 (§4).  This gives the history
records finer granularity — a sensor that is *slightly* off is penalised
less than one that is wildly off — at the cost of slower hard decisions.
"""

from __future__ import annotations

from .base import HistoryAwareVoter, VoterParams


class SoftDynamicThresholdVoter(HistoryAwareVoter):
    """History-weighted average with soft-dynamic-threshold agreement."""

    name = "sdt"
    agreement_kind = "soft"
    weight_source = "history"
    eliminates = False

    @classmethod
    def default_params(cls) -> VoterParams:
        return VoterParams(
            elimination="none",
            collation="MEAN",
            history_policy="ema",
            learning_rate=0.0003,
        )
