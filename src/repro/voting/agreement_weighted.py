"""Agreement-weighted average without history (AWA).

§7 of the paper compares clustering-only voting against "other
stateless approach, i.e., weighted average without history" — each
round's values weighted by their *instantaneous* agreement scores, with
no records carried between rounds.  COV "significantly outperforms" it:
soft weights only attenuate an outlier, while clustering removes it.

Implemented as a parameterisation of the shared pipeline with
instantaneous agreement weights; the voter resets its (unused) history
records every round so it is genuinely stateless.
"""

from __future__ import annotations

from ..types import Round, VoteOutcome
from .base import HistoryAwareVoter, VoterParams


class AgreementWeightedVoter(HistoryAwareVoter):
    """Stateless weighted average: weights = current soft agreement."""

    name = "awa"
    agreement_kind = "soft"
    weight_source = "agreement"
    eliminates = False
    stateful = False

    @classmethod
    def default_params(cls) -> VoterParams:
        return VoterParams(elimination="none", collation="MEAN")

    def vote(self, voting_round: Round) -> VoteOutcome:
        outcome = super().vote(voting_round)
        # Statelessness: drop the records the shared pipeline updated.
        self.history.reset()
        return outcome
