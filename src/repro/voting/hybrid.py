"""Hybrid history-based weighted average voter [Alahmadi & Soh 2012].

Combines Me and Sdt (§4): the *soft-dynamic* agreement scores are
accumulated into the per-module records (a fast exponential moving
average — "agreement-based and not history-based weights" in the
paper's wording, i.e. weights track accumulated agreement rather than
the reward/penalty ladder of the Standard voter), history drives module
elimination, and the output is selected with the mean-nearest-neighbour
method: the candidate value closest to the weighted mean wins, rather
than an amalgamated average.

Elimination uses a fixed record cutoff (0.5) instead of Me's
below-the-mean rule: with fine-grained agreement the records of healthy
modules spread out, and a relative rule would arbitrarily eliminate the
weakest healthy module every round.  The fixed cutoff gives the paper's
observed behaviour — a short startup spike while the faulty module's
record decays across the cutoff, then a clean recovery (Fig. 6-e/f).

In the paper's UC-1 fault experiment this is the "best of both worlds":
the faulty module is eliminated aggressively while fine-grained
agreement keeps borderline modules contributing proportionally.
"""

from __future__ import annotations

from .base import HistoryAwareVoter, VoterParams


class HybridVoter(HistoryAwareVoter):
    """Me + Sdt with accumulated-agreement weights and MNN selection."""

    name = "hybrid"
    agreement_kind = "soft"
    weight_source = "history"
    eliminates = True

    @classmethod
    def default_params(cls) -> VoterParams:
        return VoterParams(
            elimination="fixed",
            elimination_threshold=0.5,
            collation="MEAN_NEAREST_NEIGHBOR",
            history_policy="ema",
            learning_rate=0.25,
        )