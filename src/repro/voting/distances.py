"""Distance metrics for categorical candidate values.

§6 of the paper disables fine-grained agreement for categorical values
but notes that "software voting implementers may re-introduce some of
these features by supplying a custom distance metric for categorical
values".  This module supplies the common metrics so a
:class:`~repro.voting.categorical.CategoricalMajorityVoter` can treat
*near-identical* strings or JSON blobs as agreeing:

* :func:`exact` — 0/1 equality (the default behaviour);
* :func:`levenshtein` — edit distance between strings;
* :func:`normalized_levenshtein` — edit distance scaled to [0, 1];
* :func:`token_jaccard` — 1 − Jaccard similarity of whitespace tokens;
* :func:`json_blob_distance` — structural distance between parsed JSON
  documents (fraction of differing leaves).
"""

from __future__ import annotations

import json
from typing import Any


def exact(a: Any, b: Any) -> float:
    """0.0 when equal, 1.0 otherwise."""
    return 0.0 if a == b else 1.0


def levenshtein(a: str, b: str) -> float:
    """Classic edit distance (insert/delete/substitute, all cost 1)."""
    if a == b:
        return 0.0
    if not a:
        return float(len(b))
    if not b:
        return float(len(a))
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return float(previous[-1])


def normalized_levenshtein(a: str, b: str) -> float:
    """Edit distance divided by the longer string's length, in [0, 1]."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return levenshtein(a, b) / longest


def token_jaccard(a: str, b: str) -> float:
    """1 − |tokens(a) ∩ tokens(b)| / |tokens(a) ∪ tokens(b)|."""
    tokens_a = set(a.split())
    tokens_b = set(b.split())
    if not tokens_a and not tokens_b:
        return 0.0
    union = tokens_a | tokens_b
    return 1.0 - len(tokens_a & tokens_b) / len(union)


def _leaves(value: Any, path: tuple = ()):
    """Yield (path, leaf) pairs of a parsed JSON document."""
    if isinstance(value, dict):
        if not value:
            yield path, {}
        for key in sorted(value):
            yield from _leaves(value[key], path + (str(key),))
    elif isinstance(value, list):
        if not value:
            yield path, []
        for i, item in enumerate(value):
            yield from _leaves(item, path + (i,))
    else:
        yield path, value


def json_blob_distance(a: str, b: str) -> float:
    """Structural distance between two JSON documents, in [0, 1].

    The fraction of leaf paths (union of both documents) whose values
    differ or exist on only one side.  Non-JSON inputs fall back to the
    normalised edit distance, so the metric is total over strings.
    """
    try:
        doc_a = json.loads(a)
        doc_b = json.loads(b)
    except (json.JSONDecodeError, TypeError):
        return normalized_levenshtein(str(a), str(b))
    leaves_a = dict(_leaves(doc_a))
    leaves_b = dict(_leaves(doc_b))
    paths = set(leaves_a) | set(leaves_b)
    if not paths:
        return 0.0
    differing = sum(
        1
        for p in paths
        if p not in leaves_a or p not in leaves_b or leaves_a[p] != leaves_b[p]
    )
    return differing / len(paths)
