"""Standard history-based weighted average voter [Latif-Shabgahi 2001].

The baseline history-aware algorithm (the paper's "Standard", §4):
binary agreement against the dynamic margin, history-based weights, and
weighted-mean amalgamation.  No module elimination — a notorious
disagreer's influence decays only as fast as its record does, which is
why Fig. 6-e shows the Standard voter's skew surviving thousands of
rounds after the fault injection.
"""

from __future__ import annotations

from .base import HistoryAwareVoter, VoterParams


class StandardVoter(HistoryAwareVoter):
    """History-based weighted average with binary agreement."""

    name = "standard"
    agreement_kind = "binary"
    weight_source = "history"
    eliminates = False

    @classmethod
    def default_params(cls) -> VoterParams:
        # The slow EMA reproduces the paper's observation that Standard
        # de-emphasises a faulty module very gradually: the injected skew
        # is "not eliminated completely" even after 10'000 rounds.
        return VoterParams(
            elimination="none",
            collation="MEAN",
            history_policy="ema",
            learning_rate=0.0003,
        )
