"""Per-module historical reliability records.

History-based voters keep one record ``h ∈ [0, 1]`` per module,
initialised to 1 for a fresh set (the paper's bootstrap trigger relies on
that convention: *all records 1* means "new set", *all records 0* means
"system failure or extreme data spike", §5).

Two update policies are provided:

* ``additive`` (default) — reward/penalty increments, as in the original
  history-based weighted average voter [Latif-Shabgahi 2001].  Records
  can genuinely reach 0 and 1, which the AVOC trigger depends on.
* ``ema`` — exponential moving average of the agreement score; smoother
  but asymptotic (never exactly reaches the extremes).

Records can be attached to a :class:`~repro.history.store.HistoryStore`
so every update is persisted, mirroring the paper's datastore-backed
deployment (its stated latency bottleneck).

Storage layout
--------------
Records live in one preallocated float64 array with a ``module → slot``
interning map, not a per-module dict.  The streaming/serving hot loop
(:meth:`FusionEngine.process` behind
:class:`~repro.fusion.stream.StreamingFusion` and the cluster
``ShardServer``) updates the same module set every round, so
:meth:`slots_for` caches the slot-index array per module tuple and
:meth:`update` applies the whole round as a handful of vectorized array
operations instead of per-module dict reads and writes.  The array ops
walk the exact same IEEE expression per element as the historical
scalar loop, so outputs are bit-identical.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

import numpy as np

from ..exceptions import ConfigurationError

_POLICIES = ("additive", "ema")


class HistoryRecords:
    """Mutable per-module reliability records with a pluggable policy.

    Args:
        policy: ``"additive"`` or ``"ema"``.
        reward: additive increment applied scaled by the agreement score.
        penalty: additive decrement applied scaled by the disagreement.
        learning_rate: EMA smoothing factor in (0, 1].
        initial: starting record value for unseen modules (1.0 = trusted).
        store: optional persistent backend; written through on updates.
    """

    def __init__(
        self,
        policy: str = "additive",
        reward: float = 0.1,
        penalty: float = 0.2,
        learning_rate: float = 0.3,
        initial: float = 1.0,
        store=None,
    ):
        if policy not in _POLICIES:
            raise ConfigurationError(
                f"unknown history policy {policy!r}; expected one of {_POLICIES}"
            )
        if not 0.0 <= initial <= 1.0:
            raise ConfigurationError(f"initial record must be in [0, 1], got {initial}")
        if reward < 0 or penalty < 0:
            raise ConfigurationError("reward and penalty must be non-negative")
        if not 0.0 < learning_rate <= 1.0:
            raise ConfigurationError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        self.policy = policy
        self.reward = reward
        self.penalty = penalty
        self.learning_rate = learning_rate
        self.initial = initial
        self._index: Dict[str, int] = {}
        self._values = np.empty(8, dtype=float)
        self._slot_cache: Dict[Tuple[str, ...], np.ndarray] = {}
        self._updates = 0
        self._store = store
        if store is not None:
            # Extended store protocol: stores exposing ``load_state`` /
            # ``save_state`` persist the update counter alongside the
            # records, so a rehydrated engine is bit-identical to one
            # that never left memory (the AVOC bootstrap trigger keys on
            # ``update_count == 0``, which record values alone cannot
            # restore).  Plain stores keep the legacy records-only cycle.
            if hasattr(store, "load_state"):
                state = store.load_state()
                if state is not None:
                    records, updates = state
                    for module, value in records.items():
                        self._set(module, float(value))
                    self._updates = int(updates)
            else:
                for module, value in store.load().items():
                    self._set(module, float(value))

    # -- slot management --------------------------------------------------

    def _slot(self, module: str) -> int:
        """The slot index for ``module``, materialising it if unseen."""
        slot = self._index.get(module)
        if slot is None:
            slot = len(self._index)
            if slot >= self._values.shape[0]:
                grown = np.empty(max(8, 2 * slot), dtype=float)
                grown[:slot] = self._values[:slot]
                self._values = grown
            self._values[slot] = self.initial
            self._index[module] = slot
            self._slot_cache.clear()
        return slot

    def _set(self, module: str, value: float) -> None:
        # Resolve the slot first: ``_slot`` may grow (rebind) ``_values``,
        # and ``self._values[self._slot(m)] = v`` evaluates the indexed
        # array before the call — writing into the discarded buffer.
        slot = self._slot(module)
        self._values[slot] = value

    def slots_for(self, modules: Tuple[str, ...]) -> np.ndarray:
        """Interned slot indices for a module tuple (materialises them).

        The returned array is cached per exact module tuple, so a hot
        loop voting the same roster every round pays the dict lookups
        once and then reuses one index array.
        """
        slots = self._slot_cache.get(modules)
        if slots is None:
            slots = np.asarray([self._slot(m) for m in modules], dtype=np.intp)
            self._slot_cache[modules] = slots
        return slots

    def values_at(self, slots: np.ndarray) -> np.ndarray:
        """The current records at ``slots`` (a fresh array, safe to mutate)."""
        return self._values[slots]

    # -- access ---------------------------------------------------------

    def get(self, module: str) -> float:
        """Current record for ``module`` (the initial value if unseen)."""
        slot = self._index.get(module)
        if slot is None:
            return self.initial
        return float(self._values[slot])

    def ensure(self, modules: Iterable[str]) -> None:
        """Materialise records for ``modules`` without changing values."""
        index = self._index
        for module in modules:
            if module not in index:
                self._slot(module)

    def snapshot(self) -> Dict[str, float]:
        """A copy of all materialised records."""
        return dict(zip(self._index, self._values[: len(self._index)].tolist()))

    @property
    def update_count(self) -> int:
        """How many update rounds have been applied."""
        return self._updates

    @property
    def modules(self):
        return tuple(self._index)

    @property
    def store(self):
        """The attached persistent backend (None for in-memory records)."""
        return self._store

    def persist(self) -> None:
        """Write the current state through to the attached store.

        Uses the extended ``save_state(records, updates)`` protocol when
        the store offers it (tiered/packed backends), falling back to
        the records-only ``save`` otherwise.  No-op without a store.
        """
        if self._store is None:
            return
        if hasattr(self._store, "save_state"):
            self._store.save_state(self.snapshot(), self._updates)
        else:
            self._store.save(self.snapshot())

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, module: str) -> bool:
        return module in self._index

    # -- predicates used by the AVOC bootstrap trigger -------------------

    def all_fresh(self, modules: Iterable[str], tolerance: float = 1e-12) -> bool:
        """True when every record equals the pristine initial value of 1."""
        return all(abs(self.get(m) - 1.0) <= tolerance for m in modules)

    def all_failed(self, modules: Iterable[str], tolerance: float = 1e-12) -> bool:
        """True when every record has collapsed to 0."""
        mods = list(modules)
        return bool(mods) and all(self.get(m) <= tolerance for m in mods)

    # -- updates ----------------------------------------------------------

    def update(self, scores: Mapping[str, float]) -> Dict[str, float]:
        """Apply one round of agreement scores and return the new records.

        ``scores`` maps module name to its agreement score in [0, 1].
        Modules absent from ``scores`` (e.g. missing values this round)
        keep their record untouched.
        """
        if scores:
            slots = self.slots_for(tuple(scores))
            self.update_at(slots, np.fromiter(scores.values(), dtype=float))
        else:
            self._updates += 1
            self.persist()
        return self.snapshot()

    def update_at(self, slots: np.ndarray, scores: np.ndarray) -> None:
        """Apply one round of scores at interned ``slots`` — the fast path.

        Vectorized twin of the historical per-module loop: clamp the
        score, apply the policy step, clamp the record back into
        ``[0, 1]``.  Every operation is elementwise, so the results are
        bit-identical to updating each module separately.
        """
        current = self._values[slots]
        clamped = np.minimum(np.maximum(scores, 0.0), 1.0)
        if self.policy == "additive":
            updated = current + (
                self.reward * clamped - self.penalty * (1.0 - clamped)
            )
        else:  # ema
            updated = (1.0 - self.learning_rate) * current + (
                self.learning_rate * clamped
            )
        self._values[slots] = np.minimum(np.maximum(updated, 0.0), 1.0)
        self._updates += 1
        self.persist()

    def seed(self, records: Mapping[str, float], count_as_update: bool = True) -> None:
        """Overwrite records directly (used by the AVOC bootstrap)."""
        for module, value in records.items():
            self._set(module, min(max(float(value), 0.0), 1.0))
        if count_as_update:
            self._updates += 1
        self.persist()

    def absorb(self, records: Mapping[str, float], update_count: int) -> None:
        """Overwrite all records and the update counter in one step.

        Write-back hook for the vectorized batch kernel
        (:mod:`repro.fusion.batch`): the kernel evolves the records in a
        float array and deposits the final state here.  Values are
        clamped like :meth:`seed`.  The attached store is not written —
        the batch kernel only engages for store-less records.
        """
        self._index = {}
        self._values = np.empty(max(8, len(records)), dtype=float)
        self._slot_cache.clear()
        for module, value in records.items():
            self._set(module, min(max(float(value), 0.0), 1.0))
        self._updates = int(update_count)

    def reset(self) -> None:
        """Forget everything; records return to the initial value."""
        self._index = {}
        self._values = np.empty(8, dtype=float)
        self._slot_cache.clear()
        self._updates = 0
        if self._store is not None:
            self._store.clear()

    # -- weights ----------------------------------------------------------

    def weights(self, modules: Iterable[str]) -> Dict[str, float]:
        """History-based voting weights (the records themselves)."""
        return {m: self.get(m) for m in modules}

    def below_mean(self, modules: Iterable[str], slack: float = 1e-12):
        """Modules whose record is strictly below the mean record.

        This is the module-elimination criterion of Me/Hybrid/AVOC: the
        returned modules are zero-weighted for the current round while
        their history keeps updating.
        """
        mods = list(modules)
        if not mods:
            return ()
        values = [self.get(m) for m in mods]
        mean = sum(values) / len(values)
        return tuple(m for m, v in zip(mods, values) if v < mean - slack)
