"""Clustering-Only Voting (COV): the AVOC clustering step, every round.

§7 of the paper evaluates the clustering step standalone: it excludes
the faulty module immediately (from round 1 — no history warm-up
needed), significantly outperforms the stateless weighted average, and
fits scenarios "where maintaining historical result records is
impractical: short-lived sensor measurements, one-time comparisons of
datasets".  The trade-off is higher output variance, since without
history a borderline module flips in and out of the winning cluster.
"""

from __future__ import annotations

from typing import Optional

from ..clustering.agreement_clustering import cluster_by_agreement
from ..types import Round, VoteOutcome
from .base import Voter, VoterParams
from .collation import collate


class ClusteringOnlyVoter(Voter):
    """Stateless voter that collates the largest agreement cluster."""

    name = "clustering"
    stateful = False

    def __init__(self, params: Optional[VoterParams] = None):
        self.params = params or VoterParams(collation="MEAN")

    def vote(self, voting_round: Round) -> VoteOutcome:
        voting_round.require_nonempty()
        present = voting_round.present
        modules = [r.module for r in present]
        values = [float(r.value) for r in present]
        clustering = cluster_by_agreement(
            values,
            error=self.params.error,
            soft_threshold=self.params.soft_threshold,
            min_margin=self.params.min_margin,
        )
        winners = set(clustering.largest)
        weights = {m: (1.0 if i in winners else 0.0) for i, m in enumerate(modules)}
        winning_values = [values[i] for i in clustering.largest]
        output = collate(self.params.collation, winning_values)
        return VoteOutcome(
            round_number=voting_round.number,
            value=output,
            weights=weights,
            eliminated=tuple(m for i, m in enumerate(modules) if i not in winners),
            used_bootstrap=True,
            diagnostics={
                "cluster_sizes": [len(c) for c in clustering.clusters],
                "margin": clustering.margin,
            },
        )

    def batch_kernel(self) -> Optional[str]:
        """``"clustering"`` for the numeric collations (sorted-runs
        clustering with vectorized per-round margins)."""
        from .kernels import BATCHABLE_COLLATIONS

        if type(self).vote is not ClusteringOnlyVoter.vote:
            return None
        if self.params.collation.upper() not in BATCHABLE_COLLATIONS:
            return None
        return "clustering"
