"""Module Elimination Weighted Average (Me) voter.

Optimises the Standard voter by *temporarily ignoring* values produced
by modules with below-average historical records (§4): eliminated
modules get zero weight in the collation but keep submitting values and
keep having their history updated, so they re-enter the vote once their
record recovers.  In the paper's error-injection experiment this
eliminates the faulty sensor at round 2 — far faster than Standard's
gradual de-emphasis — at the cost of occasionally eliminating a healthy
borderline module (E3's +0.2 lm residual skew in Fig. 6-e).
"""

from __future__ import annotations

from .base import HistoryAwareVoter, VoterParams


class ModuleEliminationVoter(HistoryAwareVoter):
    """Standard voter plus below-mean-record module elimination."""

    name = "me"
    agreement_kind = "binary"
    weight_source = "history"
    eliminates = True

    @classmethod
    def default_params(cls) -> VoterParams:
        # The additive reward/penalty ladder (the classic HWA record
        # update) matters here: records clamp back to 1.0 once a module
        # submits agreeing values again, so below-mean elimination is
        # reversible — a healed module genuinely re-enters the vote.
        # A disagreeing module drops to 0.8 after one round, which is
        # already below the roster mean, reproducing the paper's
        # "eliminated in round 2".
        return VoterParams(
            elimination="mean",
            collation="MEAN",
            history_policy="additive",
            reward=0.1,
            penalty=0.2,
        )
