"""Pairwise agreement computation for numeric voting.

Agreement is the primitive every history-aware voter is built on.  Two
values *agree* when their distance is within an error margin.  The paper
uses a *soft dynamic* margin: rather than a fixed absolute tolerance, the
margin scales with a per-round reference magnitude, so the same relative
error setting works for 18'000-lumen light readings and -70 dBm RSSI
readings alike.

Two agreement flavours are provided:

* **binary** — 1 when within the margin, else 0 (Standard, Me);
* **soft** — 1 within the margin, linearly decaying to 0 at
  ``soft_threshold`` times the margin (Sdt, Hybrid, AVOC) [Das 2010].
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def dynamic_margin(
    values: Sequence[float], error: float, min_margin: float = 1e-9
) -> float:
    """Compute the soft-dynamic error margin for one round.

    The margin is ``error`` (a relative tolerance, e.g. 0.05 for 5 %)
    times the magnitude of a reference value — the median of the round's
    values, which is robust to single outliers.  A floor of
    ``min_margin`` keeps the margin positive when readings hover around
    zero.

    Args:
        values: the round's present (non-missing) candidate values.
        error: relative agreement threshold ε, must be positive.
        min_margin: absolute lower bound for the returned margin.

    Returns:
        The absolute agreement margin for this round.
    """
    if error <= 0:
        raise ValueError(f"error threshold must be positive, got {error}")
    if len(values) == 0:
        return min_margin
    reference = float(np.median(np.asarray(values, dtype=float)))
    return max(abs(reference) * error, min_margin)


def pairwise_distances(values: Sequence[float]) -> np.ndarray:
    """Return the symmetric matrix of absolute pairwise distances."""
    arr = np.asarray(values, dtype=float)
    return np.abs(arr[:, None] - arr[None, :])


def binary_agreement_matrix(values: Sequence[float], margin: float) -> np.ndarray:
    """Binary agreement: 1 when two values are within ``margin``.

    The diagonal is 1 by construction (every value agrees with itself).
    """
    if margin < 0:
        raise ValueError(f"margin must be non-negative, got {margin}")
    distances = pairwise_distances(values)
    return (distances <= margin).astype(float)


def soft_agreement_matrix(
    values: Sequence[float], margin: float, soft_threshold: float
) -> np.ndarray:
    """Soft-dynamic-threshold agreement [Das 2010].

    Agreement is 1 for distances up to ``margin``, decays linearly to 0
    at ``soft_threshold * margin``, and is 0 beyond.  With
    ``soft_threshold == 1`` this degenerates to binary agreement.

    Args:
        values: candidate values.
        margin: absolute agreement margin (see :func:`dynamic_margin`).
        soft_threshold: the multiple *k* of the margin at which agreement
            reaches zero; must be >= 1.
    """
    if margin < 0:
        raise ValueError(f"margin must be non-negative, got {margin}")
    if soft_threshold < 1:
        raise ValueError(f"soft_threshold must be >= 1, got {soft_threshold}")
    distances = pairwise_distances(values)
    if soft_threshold == 1 or margin == 0:
        return (distances <= margin).astype(float)
    ramp_width = (soft_threshold - 1.0) * margin
    scores = (soft_threshold * margin - distances) / ramp_width
    return np.clip(scores, 0.0, 1.0)


def agreement_scores(matrix: np.ndarray) -> np.ndarray:
    """Per-module agreement score: mean agreement with *other* modules.

    For a single module the score is 1 (nothing to disagree with).
    """
    n = matrix.shape[0]
    if n == 0:
        return np.zeros(0)
    if n == 1:
        return np.ones(1)
    # Exclude self-agreement on the diagonal.
    return (matrix.sum(axis=1) - np.diag(matrix)) / (n - 1)


def majority_cluster(matrix: np.ndarray) -> List[int]:
    """Indices of the largest mutually-agreeing group.

    Uses each row as a candidate group seed (all modules agreeing with
    that module) and picks the largest; ties break toward the group whose
    seed has the highest total agreement.  This mirrors the paper's
    "group the values in agreement, select the largest group" clustering
    logic (§5) without quadratic graph algorithms.
    """
    n = matrix.shape[0]
    if n == 0:
        return []
    best: List[int] = []
    best_key = (-1, -1.0)
    for i in range(n):
        group = [j for j in range(n) if matrix[i, j] > 0.5]
        key = (len(group), float(matrix[i].sum()))
        if key > best_key:
            best_key = key
            best = group
    return best
