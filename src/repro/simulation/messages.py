"""Message types carried over simulated links."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class ReadingPayload:
    """One sensor reading in flight: module, round id, value, sample time."""

    module: str
    round_id: int
    value: Optional[float]
    sampled_at: float


@dataclass(frozen=True)
class Message:
    """An addressed message with arbitrary payload.

    ``kind`` is a routing hint (``"reading"``, ``"batch"``, ``"output"``)
    so nodes can dispatch without isinstance chains on payload types.
    """

    sender: str
    recipient: str
    kind: str
    payload: Any
    sent_at: float = 0.0
    headers: Dict[str, Any] = field(default_factory=dict)
