"""Deployment topologies for the two use cases.

UC-1 (Fig. 1): five light sensors —ethernet→ VINT hub —WiFi→ voting
sink.  UC-2 (Fig. 3/4): beacons broadcast straight to the edge voter on
the robot (the laptop); the BLE channel's unreliability already lives
in the beacon model, the link adds transport loss on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..fusion.engine import FusionEngine
from ..sensors.array import SensorArray
from .events import Simulator
from .network import Link
from .nodes import HubNode, SensorNode, VotingSinkNode


@dataclass
class Topology:
    """A wired-up simulation: event loop plus named nodes and links."""

    simulator: Simulator
    sensor_nodes: List[SensorNode]
    sink: VotingSinkNode
    hub: Optional[HubNode] = None
    links: Dict[str, Link] = field(default_factory=dict)

    def start(self) -> None:
        for node in self.sensor_nodes:
            node.start()

    def run(self, until: float) -> None:
        self.start()
        self.simulator.run(until=until)
        self.sink.flush()


def build_uc1_topology(
    array: SensorArray,
    engine: FusionEngine,
    sample_interval: float = 1.0 / 8.0,
    rounds: Optional[int] = None,
    ethernet_latency: float = 0.0005,
    wifi_latency: float = 0.004,
    wifi_jitter: float = 0.006,
    wifi_loss: float = 0.01,
    deadline: float = 0.05,
    seed: int = 7,
) -> Topology:
    """Wire the Fig. 1 deployment: sensors → hub (ethernet) → sink (WiFi)."""
    simulator = Simulator()
    sink = VotingSinkNode(
        simulator,
        name="sink",
        engine=engine,
        roster=array.module_names,
        deadline=deadline,
    )
    hub = HubNode(simulator, name="hub", sink="sink")
    wifi = Link(
        simulator,
        latency=wifi_latency,
        jitter=wifi_jitter,
        loss_probability=wifi_loss,
        seed=seed,
        name="wifi",
    )
    hub.connect(sink, wifi)
    links = {"wifi": wifi}
    sensor_nodes = []
    for i, sensor in enumerate(array.sensors):
        node = SensorNode(
            simulator,
            sensor=sensor,
            collector="hub",
            interval=sample_interval,
            rounds=rounds,
        )
        ethernet = Link(
            simulator,
            latency=ethernet_latency,
            seed=seed + i + 1,
            name=f"eth-{sensor.name}",
        )
        node.connect(hub, ethernet)
        links[f"eth-{sensor.name}"] = ethernet
        sensor_nodes.append(node)
    return Topology(
        simulator=simulator,
        sensor_nodes=sensor_nodes,
        sink=sink,
        hub=hub,
        links=links,
    )


def build_uc2_topology(
    array: SensorArray,
    engine: FusionEngine,
    sample_interval: float,
    rounds: Optional[int] = None,
    ble_latency: float = 0.02,
    ble_jitter: float = 0.02,
    ble_loss: float = 0.02,
    deadline: float = 0.2,
    seed: int = 11,
) -> Topology:
    """Wire the Fig. 3/4 deployment: beacons → edge voter, direct BLE."""
    simulator = Simulator()
    sink = VotingSinkNode(
        simulator,
        name="edge-voter",
        engine=engine,
        roster=array.module_names,
        deadline=deadline,
    )
    links: Dict[str, Link] = {}
    sensor_nodes = []
    for i, beacon in enumerate(array.sensors):
        node = SensorNode(
            simulator,
            sensor=beacon,
            collector="edge-voter",
            interval=sample_interval,
            rounds=rounds,
        )
        ble = Link(
            simulator,
            latency=ble_latency,
            jitter=ble_jitter,
            loss_probability=ble_loss,
            seed=seed + i + 1,
            name=f"ble-{beacon.name}",
        )
        node.connect(sink, ble)
        links[f"ble-{beacon.name}"] = ble
        sensor_nodes.append(node)
    return Topology(
        simulator=simulator, sensor_nodes=sensor_nodes, sink=sink, links=links
    )
