"""Minimal discrete-event simulation core.

A :class:`Simulator` owns a priority queue of timestamped callbacks.
Determinism matters more than speed here: events at equal times fire in
scheduling order (a monotonic sequence number breaks ties), so a seeded
simulation always replays identically.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..exceptions import SimulationError


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancelling."""

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """Run callbacks in virtual-time order."""

    def __init__(self):
        self._queue: List[_Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _Event(time=self._now + delay, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute virtual time."""
        return self.schedule(time - self._now, callback)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the final virtual time.  ``max_events`` guards against
        runaway self-rescheduling loops.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            processed = 0
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                if event.time < self._now:
                    raise SimulationError("event queue went backwards in time")
                self._now = event.time
                event.callback()
                processed += 1
                self.events_processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway schedule loop?"
                    )
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for e in self._queue if not e.cancelled)
