"""Concrete node types: sensors, hub, and the voting sink.

The voting sink implements the deployment behaviour the paper's fault
scenarios assume: readings are collected per round id, the round is
voted when every roster module reported or when the round deadline
expires (readings lost in transit simply never arrive and become
missing values), and the fusion engine's policies decide what a
degraded round yields.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..fusion.engine import FusionEngine, FusionResult
from ..types import Round, is_missing
from .events import Simulator
from .messages import Message, ReadingPayload
from .node import Node


class SensorNode(Node):
    """Periodically samples a sensor and ships readings to a collector.

    Args:
        simulator: owning event loop.
        sensor: object with ``.name`` and ``.sample(t)`` (a
            :class:`~repro.sensors.base.Sensor` or a fault wrapper).
        collector: node name the readings are sent to.
        interval: sampling period, seconds (UC-1: 1/8 s).
        rounds: how many rounds to produce (None = until sim end).
        outages: ``(start, end)`` windows (seconds) during which this
            node is down — it samples nothing and sends nothing, the
            node-level version of the §7 missing-value scenario
            (crashed gateway, battery swap, reboot).
    """

    def __init__(
        self,
        simulator: Simulator,
        sensor,
        collector: str,
        interval: float,
        rounds: Optional[int] = None,
        outages=(),
    ):
        super().__init__(simulator, name=f"sensor-{sensor.name}")
        for start, end in outages:
            if end < start:
                from ..exceptions import SimulationError

                raise SimulationError(f"outage window ({start}, {end}) inverted")
        self.sensor = sensor
        self.collector = collector
        self.interval = interval
        self.rounds = rounds
        self.outages = tuple(outages)
        self.rounds_skipped = 0
        self._round_id = 0

    def in_outage(self, t: float) -> bool:
        return any(start <= t < end for start, end in self.outages)

    def start(self) -> None:
        self.simulator.schedule(0.0, self._tick)

    def _tick(self) -> None:
        if self.rounds is not None and self._round_id >= self.rounds:
            return
        now = self.simulator.now
        if self.in_outage(now):
            self.rounds_skipped += 1
        else:
            value = self.sensor.sample(now)
            payload = ReadingPayload(
                module=self.sensor.name,
                round_id=self._round_id,
                value=None if is_missing(value) else float(value),
                sampled_at=now,
            )
            self.send(self.collector, kind="reading", payload=payload)
        self._round_id += 1
        self.simulator.schedule(self.interval, self._tick)


class HubNode(Node):
    """Forwards sensor readings to the sink (the VINT hub of Fig. 1)."""

    def __init__(self, simulator: Simulator, name: str, sink: str):
        super().__init__(simulator, name)
        self.sink = sink
        self.forwarded = 0

    def handle(self, message: Message) -> None:
        if message.kind != "reading":
            return
        self.send(self.sink, kind="reading", payload=message.payload)
        self.forwarded += 1


class VotingSinkNode(Node):
    """Collects readings per round and votes via a fusion engine.

    A round is voted as soon as every roster module reported, or when
    its deadline (``deadline`` seconds after the first reading of that
    round arrives) expires with a partial set — modules that never
    reported appear as missing values, exactly the §7 missing-value
    scenario.
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        engine: FusionEngine,
        roster: List[str],
        deadline: float = 0.05,
        on_output: Optional[Callable[[FusionResult], None]] = None,
    ):
        super().__init__(simulator, name)
        self.engine = engine
        self.roster = list(roster)
        self.deadline = deadline
        self.on_output = on_output
        self._pending: Dict[int, Dict[str, Optional[float]]] = {}
        self._deadlines: Dict[int, object] = {}
        self._voted: set = set()
        self.results: List[FusionResult] = []

    def handle(self, message: Message) -> None:
        if message.kind != "reading":
            return
        payload: ReadingPayload = message.payload
        if payload.round_id in self._voted:
            return  # late reading for an already-voted round
        bucket = self._pending.setdefault(payload.round_id, {})
        if not bucket:
            handle = self.simulator.schedule(
                self.deadline, lambda rid=payload.round_id: self._expire(rid)
            )
            self._deadlines[payload.round_id] = handle
        bucket[payload.module] = payload.value
        if len(bucket) == len(self.roster):
            self._vote(payload.round_id)

    def _expire(self, round_id: int) -> None:
        if round_id not in self._voted and round_id in self._pending:
            self._vote(round_id)

    def _vote(self, round_id: int) -> None:
        bucket = self._pending.pop(round_id)
        handle = self._deadlines.pop(round_id, None)
        if handle is not None:
            handle.cancel()
        self._voted.add(round_id)
        mapping = {module: bucket.get(module) for module in self.roster}
        voting_round = Round.from_mapping(
            round_id, mapping, timestamp=self.simulator.now
        )
        result = self.engine.process(voting_round)
        self.results.append(result)
        if self.on_output is not None:
            self.on_output(result)

    def flush(self) -> None:
        """Vote every still-pending round (called at simulation end)."""
        for round_id in sorted(self._pending):
            self._vote(round_id)
        self.results.sort(key=lambda r: r.round_number)
