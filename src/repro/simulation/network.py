"""Simulated point-to-point links with latency, jitter and loss.

UC-1's topology has two link classes (Fig. 1): sensor→hub ethernet
(sub-millisecond, reliable) and hub→sink WiFi (milliseconds of jitter,
occasional loss).  Loss is what turns a sensor reading into a §7
"missing value" at the voter.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from .events import Simulator
from .messages import Message


class Link:
    """A unidirectional lossy link between two nodes.

    Args:
        simulator: the owning event loop.
        latency: base one-way delay, seconds.
        jitter: uniform extra delay in [0, jitter] seconds.
        loss_probability: chance a message is silently dropped.
        seed: RNG seed for jitter/loss decisions.
        name: label used in statistics and debugging.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: float = 0.001,
        jitter: float = 0.0,
        loss_probability: float = 0.0,
        seed: int = 0,
        name: str = "link",
    ):
        if latency < 0 or jitter < 0:
            raise ConfigurationError("latency and jitter must be non-negative")
        if not 0.0 <= loss_probability <= 1.0:
            raise ConfigurationError("loss_probability must be in [0, 1]")
        self.simulator = simulator
        self.latency = latency
        self.jitter = jitter
        self.loss_probability = loss_probability
        self.name = name
        self._rng = np.random.default_rng(seed)
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    def transmit(self, message: Message, destination) -> bool:
        """Send a message toward ``destination`` (a node with .receive).

        Returns False when the message was dropped (callers normally
        ignore this — real senders don't know either).
        """
        self.sent += 1
        if self.loss_probability > 0.0 and self._rng.random() < self.loss_probability:
            self.dropped += 1
            return False
        delay = self.latency
        if self.jitter > 0.0:
            delay += float(self._rng.uniform(0.0, self.jitter))

        def deliver():
            self.delivered += 1
            destination.receive(message)

        self.simulator.schedule(delay, deliver)
        return True

    @property
    def loss_rate(self) -> float:
        """Observed loss fraction so far."""
        return self.dropped / self.sent if self.sent else 0.0
