"""End-to-end simulation drivers producing fused output series."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..datasets.ble_uc2 import UC2Config, build_uc2_stack
from ..datasets.light_uc1 import UC1Config, build_uc1_array
from ..fusion.engine import FusionEngine, FusionResult
from ..fusion.faults import FaultPolicy
from ..voting.registry import create_voter
from .topology import Topology, build_uc1_topology, build_uc2_topology


@dataclass
class SimulationReport:
    """Outcome of one simulated deployment run."""

    outputs: np.ndarray
    results: List[FusionResult]
    rounds_degraded: int
    link_stats: Dict[str, Dict[str, float]]
    virtual_duration: float

    @property
    def n_rounds(self) -> int:
        return len(self.results)


def _report(topology: Topology, engine: FusionEngine) -> SimulationReport:
    results = topology.sink.results
    outputs = np.asarray(
        [float("nan") if r.value is None else float(r.value) for r in results]
    )
    link_stats = {
        name: {
            "sent": link.sent,
            "delivered": link.delivered,
            "dropped": link.dropped,
            "loss_rate": link.loss_rate,
        }
        for name, link in topology.links.items()
    }
    return SimulationReport(
        outputs=outputs,
        results=results,
        rounds_degraded=engine.rounds_degraded,
        link_stats=link_stats,
        virtual_duration=topology.simulator.now,
    )


def run_uc1_simulation(
    algorithm: str = "avoc",
    rounds: int = 400,
    config: UC1Config = UC1Config(),
    wifi_loss: float = 0.01,
    fault_policy: Optional[FaultPolicy] = None,
) -> SimulationReport:
    """Simulate the UC-1 deployment end-to-end for ``rounds`` rounds."""
    array = build_uc1_array(config)
    voter = create_voter(algorithm)
    engine = FusionEngine(
        voter, roster=array.module_names, fault_policy=fault_policy or FaultPolicy()
    )
    sample_interval = 1.0 / config.sample_rate_hz
    topology = build_uc1_topology(
        array,
        engine,
        sample_interval=sample_interval,
        rounds=rounds,
        wifi_loss=wifi_loss,
        seed=config.seed,
    )
    # One extra deadline's worth of time lets the final round close.
    topology.run(until=rounds * sample_interval + 1.0)
    return _report(topology, engine)


def run_uc2_simulation(
    algorithm: str = "avoc",
    stack: str = "A",
    config: UC2Config = UC2Config(),
    ble_loss: float = 0.02,
    fault_policy: Optional[FaultPolicy] = None,
) -> SimulationReport:
    """Simulate one UC-2 beacon stack end-to-end for the full traverse."""
    array = build_uc2_stack(config, stack)
    voter = create_voter(algorithm)
    engine = FusionEngine(
        voter, roster=array.module_names, fault_policy=fault_policy or FaultPolicy()
    )
    sample_interval = config.duration_seconds / config.n_rounds
    topology = build_uc2_topology(
        array,
        engine,
        sample_interval=sample_interval,
        rounds=config.n_rounds,
        ble_loss=ble_loss,
        seed=config.seed,
    )
    topology.run(until=config.duration_seconds + 2.0)
    return _report(topology, engine)


@dataclass
class PositioningReport:
    """Outcome of a dual-stack UC-2 positioning run."""

    stack_a: SimulationReport
    stack_b: SimulationReport
    calls: np.ndarray
    truth: np.ndarray
    accuracy: float
    unstable_calls: int


def run_uc2_positioning_simulation(
    algorithm: str = "average",
    config: UC2Config = UC2Config(),
    ble_loss: float = 0.02,
) -> PositioningReport:
    """Both UC-2 stacks end-to-end, fused into closest-stack calls.

    This is the whole positioning application running on the simulated
    runtime: two independent edge voters (one per stack, as in the
    paper's deployment), their per-round fused RSSI compared to call
    the closest stack, scored against the robot's true trajectory.
    """
    from ..analysis.ambiguity import (
        classification_accuracy,
        closest_stack_series,
        unstable_rounds,
    )
    from ..datasets.ble_uc2 import generate_uc2_dataset

    report_a = run_uc2_simulation(algorithm, "A", config, ble_loss)
    report_b = run_uc2_simulation(algorithm, "B", config, ble_loss)
    n = min(report_a.n_rounds, report_b.n_rounds)
    outputs_a = report_a.outputs[:n]
    outputs_b = report_b.outputs[:n]
    truth = generate_uc2_dataset(config).true_closest()[:n]
    return PositioningReport(
        stack_a=report_a,
        stack_b=report_b,
        calls=closest_stack_series(outputs_a, outputs_b),
        truth=truth,
        accuracy=classification_accuracy(outputs_a, outputs_b, truth),
        unstable_calls=unstable_rounds(outputs_a, outputs_b),
    )
