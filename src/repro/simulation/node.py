"""Base node type for the simulated deployments."""

from __future__ import annotations

from typing import Dict, Tuple

from ..exceptions import SimulationError
from .events import Simulator
from .messages import Message
from .network import Link


class Node:
    """A named participant in the simulated network.

    Nodes hold outgoing links keyed by destination node and exchange
    :class:`~repro.simulation.messages.Message` objects.  Subclasses
    implement :meth:`handle` for their application logic.
    """

    def __init__(self, simulator: Simulator, name: str):
        self.simulator = simulator
        self.name = name
        self._links: Dict[str, Tuple[Link, "Node"]] = {}
        self.received_count = 0

    def connect(self, destination: "Node", link: Link) -> None:
        """Attach an outgoing link toward ``destination``."""
        self._links[destination.name] = (link, destination)

    def send(self, recipient: str, kind: str, payload) -> bool:
        """Send a message over the link to ``recipient``."""
        if recipient not in self._links:
            raise SimulationError(
                f"node {self.name!r} has no link to {recipient!r}"
            )
        link, destination = self._links[recipient]
        message = Message(
            sender=self.name,
            recipient=recipient,
            kind=kind,
            payload=payload,
            sent_at=self.simulator.now,
        )
        return link.transmit(message, destination)

    def receive(self, message: Message) -> None:
        """Entry point called by links on delivery."""
        self.received_count += 1
        self.handle(message)

    def handle(self, message: Message) -> None:
        """Application logic; subclasses override."""

    def start(self) -> None:
        """Called once before the simulation runs; subclasses override."""
