"""Discrete-event simulation of the paper's IoT deployments.

The paper's testbeds are physical: five light sensors wired to a VINT
hub that streams over WiFi to a voting sink node (Fig. 1/2), and a
laptop-on-robot BLE receiver acting as edge voter (Fig. 3/4).  This
package substitutes a small discrete-event runtime — event queue,
message-passing nodes, lossy/jittery links — so the end-to-end path
(sample → transmit → collect → quorum → vote) is actually exercised,
including the fault scenarios that motivate §7: readings lost in
transit become missing values, late readings miss their round deadline.
"""

from .events import Simulator
from .messages import Message, ReadingPayload
from .network import Link
from .node import Node
from .nodes import HubNode, SensorNode, VotingSinkNode
from .topology import build_uc1_topology, build_uc2_topology
from .runner import (
    PositioningReport,
    SimulationReport,
    run_uc1_simulation,
    run_uc2_positioning_simulation,
    run_uc2_simulation,
)

__all__ = [
    "Simulator",
    "Message",
    "ReadingPayload",
    "Link",
    "Node",
    "SensorNode",
    "HubNode",
    "VotingSinkNode",
    "build_uc1_topology",
    "build_uc2_topology",
    "PositioningReport",
    "SimulationReport",
    "run_uc1_simulation",
    "run_uc2_simulation",
    "run_uc2_positioning_simulation",
]
