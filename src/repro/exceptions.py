"""Exception hierarchy for the AVOC reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
client code can catch the whole family with a single ``except`` clause
while still distinguishing specific failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(ReproError):
    """A voter, engine or simulation was configured with invalid parameters."""


class SpecificationError(ReproError):
    """A VDX document failed validation.

    Carries the list of individual problems found so callers can report
    them all at once rather than fixing one field at a time.
    """

    def __init__(self, problems):
        if isinstance(problems, str):
            problems = [problems]
        self.problems = list(problems)
        super().__init__("; ".join(self.problems))


class QuorumNotReachedError(ReproError):
    """Too few candidate values were submitted for a vote to trigger."""

    def __init__(self, submitted, required, message=None):
        self.submitted = submitted
        self.required = required
        super().__init__(
            message
            or f"quorum not reached: {submitted} submitted, {required} required"
        )


class NoMajorityError(ReproError):
    """No (relative) majority agreement exists among the candidate values."""


class EmptyRoundError(ReproError):
    """A voting round received no candidate values at all."""


class HistoryStoreError(ReproError):
    """A history datastore backend failed to read or persist records."""


class DatasetError(ReproError):
    """A dataset could not be generated, loaded or parsed."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class FusionError(ReproError):
    """The fusion engine could not produce an output for a round."""
