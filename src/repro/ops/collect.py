"""Snapshot collection: one aggregated view of a node or a cluster.

:class:`SnapshotCollector` produces the JSON document the dashboard
serves and the alert manager evaluates.  Pointed at a
:class:`~repro.cluster.gateway.ClusterGateway` (in-process) or a remote
gateway address, each tick pulls the gateway's ``obs`` aggregation op
(the local registry snapshot plus every answering shard's) and
``cluster_stats`` (ring membership, per-backend status); standalone it
just snapshots the local registry.

:func:`flatten_metrics` collapses an aggregated snapshot into one flat
``{"name" | "name{label=value}": float}`` mapping — counters and
gauges keep their values (summed across shards hosting the same
family), histograms contribute ``_count`` and ``_sum`` samples — which
is the selector namespace :class:`~repro.ops.alerts.AlertRule` matches
against.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Mapping, Optional

from ..obs import MetricsRegistry, get_default_registry

__all__ = ["SnapshotCollector", "flatten_metrics"]


def _flatten_family(
    out: Dict[str, float], name: str, family: Mapping[str, Any]
) -> None:
    kind = family.get("type")
    samples = family.get("samples")
    if not isinstance(samples, Mapping):
        return
    for label, value in samples.items():
        suffix = f"{{{label}}}" if label else ""
        if kind == "histogram" and isinstance(value, Mapping):
            for stat in ("count", "sum"):
                key = f"{name}_{stat}{suffix}"
                out[key] = out.get(key, 0.0) + float(value.get(stat, 0.0))
        elif isinstance(value, (int, float)):
            key = f"{name}{suffix}"
            out[key] = out.get(key, 0.0) + float(value)


def flatten_metrics(snapshot: Mapping[str, Any]) -> Dict[str, float]:
    """Flatten an aggregated snapshot into one metric → value mapping.

    Accepts either a bare registry snapshot (family name → family) or
    the collector's aggregated document (``local`` + ``shards``); the
    same family appearing on several shards is summed, which is the
    cluster-wide reading an alert threshold wants.
    """
    out: Dict[str, float] = {}
    if "local" in snapshot or "shards" in snapshot:
        parts = [snapshot.get("local") or {}]
        shards = snapshot.get("shards") or {}
        parts.extend(shards.values())
    else:
        parts = [snapshot]
    for part in parts:
        if not isinstance(part, Mapping):
            continue
        for name, family in part.items():
            if isinstance(family, Mapping):
                _flatten_family(out, name, family)
    return out


class SnapshotCollector:
    """Builds the aggregated snapshot document, one call per tick.

    Args:
        registry: the local registry to snapshot (default: the process
            default).
        gateway: an in-process object speaking ``dispatch(request)``
            (a :class:`~repro.cluster.gateway.ClusterGateway`), or None.
        dispatch: alternatively, any callable ``request -> response``
            (e.g. :meth:`VoterClient.request` bound to a remote
            gateway).  At most one of ``gateway``/``dispatch`` is used;
            ``dispatch`` wins when both are given.

    The document shape::

        {"time": ..., "local": {<registry snapshot>},
         "cluster": {<cluster_stats payload> | null},
         "shards": {"b0": {<shard registry snapshot>}, ...},
         "shard_failures": ["b2", ...]}

    A gateway that stops answering turns into ``cluster: null`` plus an
    ``error`` field rather than an exception: the dashboard must keep
    serving its local view while the cluster is down — that is when an
    operator needs it most.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        gateway: Any = None,
        dispatch: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    ):
        self.registry = registry if registry is not None else get_default_registry()
        if dispatch is None and gateway is not None:
            dispatch = gateway.dispatch
        self._dispatch = dispatch
        # An in-process gateway sharing our registry is already covered
        # by the "local" part; surfacing its snapshot again as a
        # pseudo-shard would double-count every counter in the
        # flattened alert view.
        self._gateway_is_local = (
            gateway is not None
            and getattr(gateway, "registry", None) is self.registry
        )

    def collect(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "time": time.time(),
            "local": self.registry.snapshot(),
            "cluster": None,
            "shards": {},
            "shard_failures": [],
        }
        if self._dispatch is None:
            return document
        try:
            obs = self._dispatch({"op": "obs"})
            stats = self._dispatch({"op": "cluster_stats"})
        except Exception as exc:  # noqa: BLE001 - keep serving local view
            document["error"] = f"{type(exc).__name__}: {exc}"
            return document
        # A remote gateway's own registry snapshot rides along as a
        # pseudo-shard so its counters (disagreements, failover) are
        # visible even when the dashboard runs in another process.
        gateway_snapshot = obs.get("snapshot") or {}
        if gateway_snapshot and not self._gateway_is_local:
            document["shards"]["gateway"] = gateway_snapshot
        document["shards"].update(obs.get("shards") or {})
        document["shard_failures"] = list(obs.get("shard_failures") or [])
        stats.pop("ok", None)
        document["cluster"] = stats
        return document
