"""The operations dashboard: a dependency-free HTTP server.

:class:`DashboardServer` runs a stdlib ``ThreadingHTTPServer`` in a
daemon thread (the same start/stop/context-manager lifecycle as
:class:`~repro.service.server.VoterServer`) plus a *tick thread* that,
every ``interval`` seconds, collects an aggregated snapshot through a
:class:`~repro.ops.collect.SnapshotCollector`, evaluates the
:class:`~repro.ops.alerts.AlertManager` rule set against it, updates
the ``ops_alerts_firing`` gauge and pushes the result to every SSE
subscriber.

Routes:

``/``                 the single-page HTML dashboard (embedded, no
                      assets, EventSource against ``/api/stream``)
``/metrics``          Prometheus text passthrough of the local registry
``/api/snapshot``     the latest aggregated snapshot as JSON
``/api/stream``       ``text/event-stream`` pushing one snapshot per
                      tick (the latest one immediately on connect)
``/api/alerts``       alert states as JSON

Every request increments ``ops_dashboard_requests_total{path}``.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from ..exceptions import ReproError
from ..obs import MetricsRegistry, OpsInstruments, get_default_registry
from .alerts import AlertManager, AlertRule, LogNotifier
from .collect import SnapshotCollector, flatten_metrics

__all__ = ["DashboardServer"]

#: Paths the request counter tracks; anything else lands on "other" so
#: a scanner cannot grow the label set without bound.
_TRACKED_PATHS = ("/", "/metrics", "/api/snapshot", "/api/stream", "/api/alerts")

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>AVOC operations</title>
<style>
  body { font-family: -apple-system, "Segoe UI", sans-serif; margin: 2rem;
         background: #0e1116; color: #dde3ea; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
  table { border-collapse: collapse; margin-top: .5rem; }
  th, td { padding: .25rem .7rem; border-bottom: 1px solid #2c333d;
           text-align: left; font-size: .9rem; }
  .alive { color: #4fc06c; } .dead { color: #e5534b; }
  .stale { color: #d4a72c; } .fenced { color: #e5534b; font-weight: bold; }
  .firing { color: #e5534b; font-weight: bold; }
  .pending { color: #d4a72c; } .resolved, .inactive { color: #768390; }
  #meta { color: #768390; font-size: .85rem; }
  code { background: #1c2128; padding: .1rem .3rem; border-radius: 3px; }
</style>
</head>
<body>
<h1>AVOC operations</h1>
<p id="meta">waiting for first snapshot&hellip;</p>
<h2>Alerts</h2>
<table id="alerts"><tr><th>rule</th><th>metric</th><th>state</th>
<th>observed</th><th>severity</th></tr></table>
<h2>Backends</h2>
<table id="backends"><tr><th>backend</th><th>status</th><th>breaker</th>
<th>requests</th><th>failures</th></tr></table>
<h2>Key metrics</h2>
<table id="metrics"><tr><th>metric</th><th>value</th></tr></table>
<script>
const KEY_PREFIXES = ["cluster_", "fusion_rounds", "service_requests",
                      "ingest_", "store_", "ops_"];
function row(cells, classes) {
  const tr = document.createElement("tr");
  cells.forEach((text, i) => {
    const td = document.createElement("td");
    td.textContent = text;
    if (classes && classes[i]) td.className = classes[i];
    tr.appendChild(td);
  });
  return tr;
}
function resetTable(id) {
  const table = document.getElementById(id);
  while (table.rows.length > 1) table.deleteRow(1);
  return table;
}
function render(doc) {
  document.getElementById("meta").textContent =
    "snapshot at " + new Date(doc.time * 1000).toISOString() +
    (doc.error ? " — gateway error: " + doc.error : "");
  const alerts = resetTable("alerts");
  (doc.alerts || []).forEach(a => alerts.appendChild(row(
    [a.rule.name, a.rule.metric + " " + a.rule.op + " " + a.rule.threshold,
     a.state, a.last_observed === null ? "—" : a.last_observed,
     a.rule.severity],
    [null, null, a.state, null, null])));
  const backends = resetTable("backends");
  const cluster = doc.cluster || {};
  Object.entries(cluster.backends || {}).forEach(([id, b]) =>
    backends.appendChild(row(
      [id, b.status, b.breaker, b.requests, b.failures],
      [null, b.status, null, null, null])));
  const metrics = resetTable("metrics");
  Object.entries(doc.flat || {}).filter(([name]) =>
    KEY_PREFIXES.some(p => name.startsWith(p))
  ).sort().forEach(([name, value]) =>
    metrics.appendChild(row([name, value])));
}
const source = new EventSource("/api/stream");
source.onmessage = event => render(JSON.parse(event.data));
</script>
</body>
</html>
"""


class _Subscriber:
    """One SSE connection's bounded queue of pending snapshots."""

    __slots__ = ("queue",)

    def __init__(self) -> None:
        # Bounded: a stalled consumer drops old ticks instead of
        # buffering without limit; SSE is a live view, not a log.
        self.queue: "queue.Queue[Optional[str]]" = queue.Queue(maxsize=8)

    def push(self, payload: Optional[str]) -> None:
        while True:
            try:
                self.queue.put_nowait(payload)
                return
            except queue.Full:
                try:
                    self.queue.get_nowait()
                except queue.Empty:
                    pass


class _DashboardHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: "_HTTPServer"

    def log_message(self, format: str, *args: Any) -> None:
        pass  # requests are counted, not printed

    # -- helpers -----------------------------------------------------------

    def _count(self, path: str) -> None:
        obs = self.server.dashboard._obs
        obs.dashboard_requests.labels(
            path if path in _TRACKED_PATHS else "other"
        ).inc()

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: Any, status: int = 200) -> None:
        self._send(
            status,
            "application/json; charset=utf-8",
            json.dumps(payload).encode("utf-8"),
        )

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        self._count(path)
        try:
            if path == "/":
                self._send(200, "text/html; charset=utf-8", _PAGE.encode("utf-8"))
            elif path == "/metrics":
                self._send(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    self.server.dashboard.registry.render().encode("utf-8"),
                )
            elif path == "/api/snapshot":
                self._send_json(self.server.dashboard.latest_snapshot())
            elif path == "/api/alerts":
                self._send_json(self.server.dashboard.alert_states())
            elif path == "/api/stream":
                self._stream()
            else:
                self._send_json({"error": f"no route {path!r}"}, status=404)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _stream(self) -> None:
        dashboard = self.server.dashboard
        subscriber = dashboard._subscribe()
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            # SSE is an unbounded body; Content-Length cannot apply.
            self.send_header("Connection", "close")
            self.end_headers()
            while True:
                payload = subscriber.queue.get()
                if payload is None:  # server shutting down
                    return
                self.wfile.write(b"data: " + payload.encode("utf-8") + b"\n\n")
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            return
        finally:
            dashboard._unsubscribe(subscriber)


class _HTTPServer(ThreadingHTTPServer):
    allow_reuse_address = True
    daemon_threads = True
    dashboard: "DashboardServer"


class DashboardServer:
    """The live-operations HTTP server plus its snapshot/alert loop.

    Args:
        registry: local metrics registry (default: the process default).
        gateway / dispatch: where cluster state comes from — an
            in-process :class:`~repro.cluster.gateway.ClusterGateway`,
            or any ``request -> response`` callable (e.g. a
            :class:`~repro.service.client.VoterClient` bound to a
            remote gateway).  Omit both for a node-local dashboard.
        rules: declarative :class:`~repro.ops.alerts.AlertRule` set.
        notifiers: alert transition hooks (default: one
            :class:`~repro.ops.alerts.LogNotifier`).
        interval: seconds between snapshot ticks.
        host / port: bind address (port 0 picks a free port).

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        gateway: Any = None,
        dispatch: Any = None,
        rules: Optional[List[AlertRule]] = None,
        notifiers: Optional[List[Any]] = None,
        interval: float = 2.0,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        if interval <= 0:
            raise ReproError("dashboard interval must be > 0 seconds")
        self.registry = registry if registry is not None else get_default_registry()
        self.interval = interval
        self._obs = OpsInstruments(self.registry)
        self._collector = SnapshotCollector(
            registry=self.registry, gateway=gateway, dispatch=dispatch
        )
        self.alerts = AlertManager(
            list(rules or []),
            notifiers=notifiers if notifiers is not None else [LogNotifier()],
        )
        self._severities_seen: set = set()
        self._lock = threading.Lock()
        self._subscribers: List[_Subscriber] = []
        self._latest: Dict[str, Any] = {
            "time": time.time(), "local": {}, "cluster": None,
            "shards": {}, "shard_failures": [], "alerts": [], "flat": {},
        }
        self._stop = threading.Event()
        self._tick_thread: Optional[threading.Thread] = None
        self._http: Optional[_HTTPServer] = _HTTPServer(
            (host, port), _DashboardHandler
        )
        self._http.dashboard = self
        self._address: Tuple[str, int] = self._http.server_address  # type: ignore[assignment]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) the dashboard is (or was) bound to."""
        return self._address

    def start(self) -> "DashboardServer":
        if self._http is None:
            raise ReproError("dashboard already stopped")
        if self._thread is not None:
            raise ReproError("dashboard already started")
        self.tick()  # serve a real snapshot from the very first request
        self._thread = threading.Thread(
            target=self._http.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True, name="ops-dashboard",
        )
        self._thread.start()
        self._tick_thread = threading.Thread(
            target=self._tick_loop, daemon=True, name="ops-dashboard-tick"
        )
        self._tick_thread.start()
        return self

    def stop(self) -> None:
        """Shut down HTTP, the tick loop and every SSE stream (idempotent)."""
        self._stop.set()
        with self._lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber.push(None)
        thread, self._thread = self._thread, None
        http, self._http = self._http, None
        if http is not None:
            if thread is not None:
                http.shutdown()
            http.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        tick_thread, self._tick_thread = self._tick_thread, None
        if tick_thread is not None:
            tick_thread.join(timeout=5.0)

    def __enter__(self) -> "DashboardServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- snapshot loop -----------------------------------------------------

    def tick(self) -> Dict[str, Any]:
        """Collect one snapshot, evaluate alerts, push to subscribers.

        The tick thread calls this every ``interval``; tests may call
        it directly for a deterministic extra tick.
        """
        start = time.perf_counter()
        document = self._collector.collect()
        flat = flatten_metrics(document)
        self.alerts.evaluate(flat)
        self._update_alert_gauge()
        document["alerts"] = self.alerts.to_dict()
        document["flat"] = flat
        self._obs.snapshot_seconds.observe(time.perf_counter() - start)
        payload = json.dumps(document)
        with self._lock:
            self._latest = document
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber.push(payload)
        return document

    def _tick_loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 - the loop must survive a bad tick
                import logging

                logging.getLogger("repro.ops.dashboard").exception(
                    "snapshot tick failed"
                )

    def _update_alert_gauge(self) -> None:
        firing = self.alerts.firing_by_severity()
        self._severities_seen.update(firing)
        for severity in self._severities_seen:
            self._obs.alerts_firing.labels(severity).set(
                float(firing.get(severity, 0))
            )

    # -- accessors ---------------------------------------------------------

    def latest_snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return self._latest

    def alert_states(self) -> List[Dict[str, Any]]:
        return self.alerts.to_dict()

    # -- SSE subscriptions -------------------------------------------------

    def _subscribe(self) -> _Subscriber:
        subscriber = _Subscriber()
        with self._lock:
            self._subscribers.append(subscriber)
            latest = self._latest
        subscriber.push(json.dumps(latest))
        return subscriber

    def _unsubscribe(self, subscriber: _Subscriber) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

    def subscriber_count(self) -> int:
        """Open SSE streams (tests assert disconnect cleanup with this)."""
        with self._lock:
            return len(self._subscribers)
