"""repro.ops — live operations: dashboard, alerting, snapshot collection.

The operations subsystem is the consumer side of :mod:`repro.obs`: a
dependency-free HTTP dashboard (:class:`DashboardServer`) that serves a
single-page view plus ``/metrics``, ``/api/snapshot`` and an SSE
``/api/stream`` of periodic snapshots; a declarative threshold alerting
engine (:class:`AlertRule` / :class:`AlertManager`) evaluated on every
snapshot tick; and the :class:`SnapshotCollector` that aggregates the
local registry with per-shard snapshots pulled through a cluster
gateway's ``obs``/``cluster_stats`` operations.

Quick use::

    from repro.ops import AlertRule, DashboardServer

    rules = [AlertRule("shards-down", "cluster_backends_alive",
                       "<", 2.0, severity="critical")]
    with DashboardServer(gateway=cluster.gateway, rules=rules) as dash:
        print("dashboard at http://%s:%d/" % dash.address)

Live cluster tuning lives next door in :mod:`repro.tuning.live`.
"""

from .alerts import (
    Alert,
    AlertManager,
    AlertRule,
    FileNotifier,
    LogNotifier,
    default_alert_rules,
)
from .collect import SnapshotCollector, flatten_metrics
from .dashboard import DashboardServer

__all__ = [
    "Alert",
    "AlertManager",
    "AlertRule",
    "DashboardServer",
    "FileNotifier",
    "LogNotifier",
    "SnapshotCollector",
    "default_alert_rules",
    "flatten_metrics",
]
