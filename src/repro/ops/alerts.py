"""Declarative threshold alerting over metric snapshots.

An :class:`AlertRule` names a metric (as flattened by
:func:`repro.ops.collect.flatten_metrics`), a comparison against a
threshold, and a ``for`` duration: the condition must hold continuously
for that long before the alert transitions from *pending* to *firing*
(the Prometheus-style hysteresis that keeps one noisy tick from paging
anyone).  :class:`AlertManager` owns the rule set, evaluates it against
each snapshot tick, drives the ``pending → firing → resolved``
lifecycle and fans state changes out to notifier callables.

Counters are monotonic, so a plain ``value > 0`` rule on, say,
``cluster_replica_disagreements_total`` could fire once and never
resolve.  Rules therefore pick a ``mode``: ``"value"`` compares the
sampled value itself (the right choice for gauges), ``"delta"``
compares the per-tick increase (the right choice for counters — the
alert resolves as soon as the counter stops moving).
"""

from __future__ import annotations

import json
import logging
import operator
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..exceptions import ReproError

__all__ = [
    "Alert",
    "AlertManager",
    "AlertRule",
    "FileNotifier",
    "LogNotifier",
    "default_alert_rules",
]

logger = logging.getLogger("repro.ops.alerts")

_COMPARATORS: Dict[str, Callable[[float, float], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}

#: Lifecycle states an alert moves through.
STATES = ("inactive", "pending", "firing", "resolved")


@dataclass(frozen=True)
class AlertRule:
    """One declarative threshold rule.

    Args:
        name: unique rule id (shown on the dashboard and in notifications).
        metric: flattened metric selector — ``"cluster_backends_alive"``
            or, with labels, ``"service_requests_total{op=vote}"``.
        op: comparison operator (``>``, ``>=``, ``<``, ``<=``, ``==``,
            ``!=``) applied as ``observed <op> threshold``.
        threshold: the right-hand side of the comparison.
        for_seconds: how long the condition must hold continuously
            before the alert fires (0 fires on the first breaching tick).
        severity: free-form label (``"warning"``, ``"critical"``, ...)
            carried into notifications and the ``ops_alerts_firing``
            gauge.
        mode: ``"value"`` compares the sample itself, ``"delta"`` the
            increase since the previous tick (use for counters).
        description: optional human text for the dashboard.
    """

    name: str
    metric: str
    op: str
    threshold: float
    for_seconds: float = 0.0
    severity: str = "warning"
    mode: str = "value"
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ReproError(
                f"alert rule {self.name!r}: unknown operator {self.op!r}; "
                f"expected one of {tuple(_COMPARATORS)}"
            )
        if self.mode not in ("value", "delta"):
            raise ReproError(
                f"alert rule {self.name!r}: mode must be 'value' or "
                f"'delta', got {self.mode!r}"
            )
        if self.for_seconds < 0:
            raise ReproError(
                f"alert rule {self.name!r}: for_seconds must be >= 0"
            )

    def breached(self, observed: float) -> bool:
        return _COMPARATORS[self.op](observed, self.threshold)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AlertRule":
        """Build a rule from a JSON-style mapping (the CLI rules file)."""
        known = {
            "name", "metric", "op", "threshold", "for_seconds",
            "severity", "mode", "description",
        }
        unknown = set(payload) - known
        if unknown:
            raise ReproError(
                f"alert rule has unknown fields {sorted(unknown)}"
            )
        for required in ("name", "metric", "op", "threshold"):
            if required not in payload:
                raise ReproError(f"alert rule is missing {required!r}")
        return cls(**dict(payload))  # type: ignore[arg-type]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "op": self.op,
            "threshold": self.threshold,
            "for_seconds": self.for_seconds,
            "severity": self.severity,
            "mode": self.mode,
            "description": self.description,
        }


@dataclass
class Alert:
    """The live state of one rule inside an :class:`AlertManager`."""

    rule: AlertRule
    state: str = "inactive"
    #: Monotonic timestamp of the first tick of the current breach run.
    pending_since: Optional[float] = None
    #: Monotonic timestamp of the transition into ``firing``.
    firing_since: Optional[float] = None
    #: The value the rule last compared (post mode adjustment).
    last_observed: Optional[float] = None
    #: Raw sample from the previous tick (delta-mode bookkeeping).
    previous_sample: Optional[float] = field(default=None, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule.to_dict(),
            "state": self.state,
            "pending_since": self.pending_since,
            "firing_since": self.firing_since,
            "last_observed": self.last_observed,
        }


class LogNotifier:
    """Notifier that writes transitions to the standard logger."""

    def __call__(self, alert: Alert, transition: str) -> None:
        level = (
            logging.WARNING if transition == "firing" else logging.INFO
        )
        logger.log(
            level,
            "alert %s %s: %s %s %s (observed %s, severity %s)",
            alert.rule.name,
            transition,
            alert.rule.metric,
            alert.rule.op,
            alert.rule.threshold,
            alert.last_observed,
            alert.rule.severity,
        )


class FileNotifier:
    """Notifier that appends one JSON line per transition to a file."""

    def __init__(self, path: Any):
        self.path = path

    def __call__(self, alert: Alert, transition: str) -> None:
        record = {
            "time": time.time(),
            "transition": transition,
            "alert": alert.to_dict(),
        }
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")


def default_alert_rules(
    expected_backends: Optional[int] = None,
) -> List[AlertRule]:
    """The stock rule set ``avoc dashboard`` starts with.

    ``expected_backends`` arms the shards-down rule (omit it when
    attaching to a remote gateway whose topology is unknown).  The
    counter rules use delta mode so they resolve when the condition
    stops, not never.
    """
    rules = [
        AlertRule(
            name="replica-disagreement",
            metric="cluster_replica_disagreements_total",
            op=">",
            threshold=0.0,
            mode="delta",
            severity="warning",
            description="replica answers diverged since the last tick",
        ),
        AlertRule(
            name="ingest-backpressure",
            metric="ingest_backpressure_drops_total",
            op=">",
            threshold=0.0,
            mode="delta",
            severity="warning",
            description="the ingest tier shed votes since the last tick",
        ),
    ]
    if expected_backends:
        rules.insert(
            0,
            AlertRule(
                name="shards-down",
                metric="cluster_backends_alive",
                op="<",
                threshold=float(expected_backends),
                severity="critical",
                description="fewer backends alive than the cluster expects",
            ),
        )
    return rules


class AlertManager:
    """Evaluates a rule set against snapshot ticks and tracks lifecycle.

    Args:
        rules: the declarative rule set.
        notifiers: callables invoked as ``notifier(alert, transition)``
            on every ``firing``/``resolved`` transition.  A notifier
            that raises is logged and skipped — alerting must never
            take the snapshot loop down.
        clock: injectable monotonic clock (tests pin time with this).

    A missing metric is treated as "condition not met": a cluster that
    has not produced a counter yet should not page, and the rule
    re-arms as soon as the metric appears.
    """

    def __init__(
        self,
        rules: List[AlertRule],
        notifiers: Optional[List[Callable[[Alert, str], None]]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        names = [rule.name for rule in rules]
        if len(names) != len(set(names)):
            raise ReproError("alert rule names must be unique")
        self._clock = clock
        self._notifiers = list(notifiers or [])
        self._alerts: Dict[str, Alert] = {
            rule.name: Alert(rule=rule) for rule in rules
        }

    # -- introspection -----------------------------------------------------

    @property
    def alerts(self) -> Tuple[Alert, ...]:
        return tuple(self._alerts.values())

    def firing(self) -> Tuple[Alert, ...]:
        return tuple(a for a in self._alerts.values() if a.state == "firing")

    def firing_by_severity(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for alert in self.firing():
            severity = alert.rule.severity
            counts[severity] = counts.get(severity, 0) + 1
        return counts

    def to_dict(self) -> List[Dict[str, Any]]:
        return [alert.to_dict() for alert in self._alerts.values()]

    # -- evaluation --------------------------------------------------------

    def evaluate(self, metrics: Mapping[str, float]) -> List[Tuple[Alert, str]]:
        """Evaluate every rule against one flattened metric snapshot.

        Returns the ``(alert, transition)`` pairs of this tick, after
        fanning them out to the notifiers.
        """
        now = self._clock()
        transitions: List[Tuple[Alert, str]] = []
        for alert in self._alerts.values():
            transition = self._step(alert, metrics, now)
            if transition is not None:
                transitions.append((alert, transition))
        for alert, transition in transitions:
            for notifier in self._notifiers:
                try:
                    notifier(alert, transition)
                except Exception:  # noqa: BLE001 - alerting must not die
                    logger.exception(
                        "notifier %r failed for alert %s",
                        notifier, alert.rule.name,
                    )
        return transitions

    def _step(
        self, alert: Alert, metrics: Mapping[str, float], now: float
    ) -> Optional[str]:
        rule = alert.rule
        sample = metrics.get(rule.metric)
        if rule.mode == "delta":
            previous = alert.previous_sample
            alert.previous_sample = sample
            if sample is None or previous is None:
                observed: Optional[float] = None
            else:
                observed = sample - previous
        else:
            observed = sample
        alert.last_observed = observed
        breached = observed is not None and rule.breached(observed)
        if breached:
            if alert.state in ("inactive", "resolved"):
                alert.state = "pending"
                alert.pending_since = now
            pending_since = (
                alert.pending_since if alert.pending_since is not None else now
            )
            if (
                alert.state == "pending"
                and now - pending_since >= rule.for_seconds
            ):
                alert.state = "firing"
                alert.firing_since = now
                return "firing"
            return None
        # Condition clear: a pending alert silently re-arms, a firing
        # one resolves (and notifies).
        alert.pending_since = None
        if alert.state == "firing":
            alert.state = "resolved"
            alert.firing_since = None
            return "resolved"
        if alert.state == "pending":
            alert.state = "inactive"
        return None
