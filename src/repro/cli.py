"""Command-line interface: regenerate every figure, inspect VDX, vote.

Installed as ``avoc`` (see ``pyproject.toml``); also runnable as
``python -m repro``.  The ``compare`` subcommand is the text counterpart
of the paper's interactive algorithm-comparison application (Fig. 5).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np


def _cmd_algorithms(args) -> int:
    from .voting.registry import available_algorithms

    for name in available_algorithms():
        print(name)
    return 0


def _cmd_fig6(args) -> int:
    from .analysis.report import render_series, render_table, save_series_csv
    from .datasets.light_uc1 import UC1Config
    from .experiments import run_fig6

    config = UC1Config(n_rounds=args.rounds, seed=args.seed)
    result = run_fig6(config, tolerance=args.tolerance)

    if args.export:
        from pathlib import Path

        export = Path(args.export)
        save_series_csv(
            export / "fig6a_raw.csv",
            {m: result.clean.column(m) for m in result.clean.modules},
        )
        save_series_csv(export / "fig6b_clean_outputs.csv", result.clean_outputs)
        save_series_csv(
            export / "fig6c_faulty_raw.csv",
            {m: result.faulty.column(m) for m in result.faulty.modules},
        )
        save_series_csv(export / "fig6d_fault_outputs.csv", result.fault_outputs)
        save_series_csv(export / "fig6e_diffs.csv", result.diffs)
        print(f"exported Fig. 6 series to {export}/")

    print("== Fig. 6-a: raw sensor data (kilolumen) ==")
    print(
        render_series(
            {m: result.clean.column(m) for m in result.clean.modules}
        )
    )
    print("\n== Fig. 6-b: voting output on raw data ==")
    print(render_series(result.clean_outputs))
    print("\n== Fig. 6-c: raw data with faulty E4 (+6) ==")
    print(
        render_series(
            {m: result.faulty.column(m) for m in result.faulty.modules}
        )
    )
    print("\n== Fig. 6-d: voting output under faults ==")
    print(render_series(result.fault_outputs))
    print("\n== Fig. 6-e: error-injection effect (fault − clean output) ==")
    print(render_series(result.diffs))
    print("\n== Fig. 6-f: first 10 rounds of the diffs ==")
    rows = [
        [alg] + [round(v, 3) for v in result.zoom(alg, 10)]
        for alg in result.diffs
    ]
    print(render_table(["algorithm"] + [f"r{i}" for i in range(10)], rows))
    print("\n== Convergence (settling within ±{:.2g} klm) ==".format(args.tolerance))
    rows = [
        [alg, result.convergence_rounds[alg], result.exclusion_rounds[alg]]
        for alg in result.diffs
    ]
    print(
        render_table(
            ["algorithm", "output settling round", "E4 exclusion round"], rows
        )
    )
    print(f"\nAVOC convergence boost over Hybrid: {result.boost:.2f}x")
    return 0


def _cmd_fig7(args) -> int:
    from .analysis.report import render_series, render_table, save_series_csv
    from .datasets.ble_uc2 import UC2Config
    from .experiments import run_fig7

    config = UC2Config(seed=args.seed)
    result = run_fig7(config, margin_db=args.margin)

    if args.export:
        from pathlib import Path

        export = Path(args.export)
        for panel in ("single_beacon", "nine_average", "avoc_voting"):
            save_series_csv(export / f"fig7_{panel}.csv", getattr(result, panel))
        print(f"exported Fig. 7 series to {export}/")

    print("== Fig. 7-a: single beacon per stack (RSSI, dBm) ==")
    print(render_series(result.single_beacon))
    print("\n== Fig. 7-b: 9-beacon average per stack ==")
    print(render_series(result.nine_average))
    print("\n== Fig. 7-c: 9-beacon AVOC voting per stack ==")
    print(render_series(result.avoc_voting))
    print(
        "\n== Ambiguous rounds (|RSSI_A − RSSI_B| < {:.3g} dB) ==".format(args.margin)
    )
    rows = [
        [label, result.ambiguity(panel), result.instability(panel),
         f"{result.accuracy(panel):.3f}"]
        for label, panel in (
            ("single beacon", "single_beacon"),
            ("9-beacon average", "nine_average"),
            ("9-beacon AVOC", "avoc_voting"),
        )
    ]
    print(
        render_table(
            ["fusion", "ambiguous rounds", "unstable calls", "accuracy"], rows
        )
    )
    print("\n== Per-algorithm closest-stack instability (collation groups) ==")
    instability = result.algorithm_instability()
    ambiguity = result.algorithm_ambiguity()
    rows = [[alg, ambiguity[alg], instability[alg]] for alg in instability]
    print(render_table(["algorithm", "ambiguous rounds", "unstable calls"], rows))
    return 0


def _cmd_shelf(args) -> int:
    from .analysis.report import render_table
    from .datasets.shelf import ShelfConfig, generate_shelf_dataset
    from .types import Round
    from .voting.categorical import CategoricalMajorityVoter

    config = ShelfConfig(
        n_rounds=args.rounds,
        n_sensors=args.sensors,
        n_defective=args.defective,
    )
    dataset = generate_shelf_dataset(config)
    voter = CategoricalMajorityVoter(history_mode=args.history)
    outputs = []
    for number in range(dataset.n_rounds):
        voting_round = Round.from_mapping(number, dataset.round_values(number))
        outputs.append(voter.vote(voting_round).value)
    accuracy = dataset.accuracy_of(outputs)
    print(
        f"smart shelf: {config.n_sensors} sensors "
        f"({config.n_defective} defective), {config.n_rounds} rounds, "
        f"history={args.history}"
    )
    print(f"fused occupancy accuracy: {accuracy:.2%}")
    records = voter.history.snapshot()
    if records:
        rows = [
            [m, round(records[m], 3),
             "DEFECTIVE" if m in config.defective_modules() else ""]
            for m in sorted(records, key=records.get)[:5]
        ]
        print("\nlowest history records:")
        print(render_table(["sensor", "record", ""], rows))
    return 0


def _cmd_compare(args) -> int:
    from .analysis.report import render_table
    from .types import Round
    from .voting.registry import available_algorithms, create_voter

    values = [float(v) for v in args.values.split(",")]
    algorithms = args.algorithms.split(",") if args.algorithms else [
        "average", "median", "standard", "me", "sdt", "hybrid", "clustering", "avoc",
    ]
    rows = []
    for name in algorithms:
        voter = create_voter(name.strip())
        outcome = voter.vote(Round.from_values(0, values))
        rows.append([name.strip(), outcome.value, ",".join(outcome.eliminated) or "-"])
    print(render_table(["algorithm", "output", "eliminated"], rows))
    return 0


def _cmd_vdx(args) -> int:
    from .exceptions import SpecificationError
    from .vdx import VotingSpec, build_voter
    from .vdx.schema import describe

    if args.describe:
        print(describe())
        return 0
    if args.file is None:
        print("vdx: provide a file to validate, or --describe", file=sys.stderr)
        return 2
    try:
        spec = VotingSpec.from_file(args.file)
    except SpecificationError as exc:
        print(f"INVALID: {args.file}", file=sys.stderr)
        for problem in exc.problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    voter = build_voter(spec)
    print(f"VALID: {args.file}")
    print(f"  algorithm_name: {spec.algorithm_name}")
    print(f"  voter class:    {type(voter).__name__}")
    print(f"  collation:      {spec.collation}")
    print(f"  history:        {spec.history}")
    print(f"  bootstrapping:  {spec.bootstrapping}")
    return 0


def _cmd_simulate(args) -> int:
    from .analysis.report import render_series, render_table
    from .simulation import run_uc1_simulation, run_uc2_simulation

    if args.use_case == "uc1":
        report = run_uc1_simulation(algorithm=args.algorithm, rounds=args.rounds)
    else:
        report = run_uc2_simulation(algorithm=args.algorithm)
    print(render_series({f"{args.use_case} fused output": report.outputs}))
    rows = [
        [name, s["sent"], s["delivered"], s["dropped"], f"{s['loss_rate']:.3f}"]
        for name, s in sorted(report.link_stats.items())
    ]
    print(render_table(["link", "sent", "delivered", "dropped", "loss"], rows))
    print(
        f"rounds: {report.n_rounds}  degraded: {report.rounds_degraded}  "
        f"virtual time: {report.virtual_duration:.1f}s"
    )
    return 0


def _cmd_diagnose(args) -> int:
    from .analysis.reliability import diagnose, worst_module
    from .analysis.report import render_table
    from .datasets.loader import load_csv
    from .voting.registry import create_voter

    dataset = load_csv(args.csv)
    voter = create_voter(args.algorithm)
    outcomes = [voter.vote(r) for r in dataset.rounds()]
    reports = diagnose(dataset, outcomes)
    rows = [
        [
            r.module,
            r.classification,
            f"{r.rounds_missing}/{r.rounds_total}",
            round(r.mean_agreement, 3),
            f"{r.exclusion_fraction:.1%}",
            round(r.residual_bias, 3),
            round(r.residual_trend, 3),
            round(r.final_record, 3),
        ]
        for r in reports.values()
    ]
    print(
        render_table(
            ["module", "class", "missing", "agreement", "excluded",
             "bias", "trend", "record"],
            rows,
        )
    )
    worst = worst_module(reports)
    if worst is None:
        print("\nall modules healthy")
    else:
        print(f"\nmodule most in need of attention: {worst} "
              f"({reports[worst].classification})")
    return 0


def _cmd_serve(args) -> int:
    from .service.server import VoterServer
    from .vdx.examples import AVOC_SPEC
    from .vdx.spec import VotingSpec

    spec = VotingSpec.from_file(args.spec) if args.spec else AVOC_SPEC
    server = VoterServer(spec, host=args.host, port=args.port)
    server.start()
    host, port = server.address
    print(f"voter service '{spec.algorithm_name}' listening on {host}:{port}")
    print("protocol: line-delimited JSON; ops: ping/spec/vote/submit/"
          "close_round/history/stats/reset")
    if args.once:
        server.stop()
        return 0
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _resident_bound(value):
    """Map the CLI residency knob: None = default, 0 = unbounded."""
    if value is None:
        from .history import DEFAULT_HOT_SERIES

        return DEFAULT_HOT_SERIES
    return None if value == 0 else value


def _cmd_cluster(args) -> int:
    import json

    from .cluster.supervisor import FusionCluster
    from .vdx.examples import AVOC_SPEC
    from .vdx.spec import VotingSpec

    spec = VotingSpec.from_file(args.spec) if args.spec else AVOC_SPEC
    cluster = FusionCluster(
        spec,
        n_shards=args.shards,
        replicas=args.replicas,
        host=args.host,
        port=args.port,
        history_root=args.history_root,
        mode=args.mode,
        store=args.store,
        max_resident_series=_resident_bound(args.max_resident_series),
    )
    cluster.start()
    host, port = cluster.address
    store_label = args.store or "jsonl"
    print(
        f"fusion cluster '{spec.algorithm_name}' listening on {host}:{port} "
        f"({args.shards} shards, {args.replicas} replicas, "
        f"{store_label} store)"
    )
    print(json.dumps(cluster.describe(), indent=2))
    if args.once:
        if args.metrics:
            _print_shard_metrics(cluster.gateway.dispatch)
        cluster.stop()
        return 0
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        if args.metrics:
            try:
                _print_shard_metrics(cluster.gateway.dispatch)
            except Exception as exc:  # noqa: BLE001 - shutdown must proceed
                print(f"(per-shard metrics unavailable: {exc})")
        cluster.stop()
    return 0


def _print_shard_metrics(dispatch) -> None:
    """Print per-shard metric sections pulled through a gateway."""
    response = dispatch({"op": "metrics", "shards": True})
    for backend_id, text in sorted(response.get("shard_metrics", {}).items()):
        print(f"\n== shard metrics [{backend_id}] ==")
        print(text if text else "(no metrics collected)", end="")
    failed = response.get("shard_failures", [])
    if failed:
        print(f"\n(unreachable shards: {', '.join(failed)})")


def _cmd_dashboard(args) -> int:
    import json

    from .ops import (
        AlertRule,
        DashboardServer,
        FileNotifier,
        LogNotifier,
        default_alert_rules,
    )

    cluster = None
    client = None
    gateway = None
    dispatch = None
    if args.gateway:
        from .service.client import VoterClient

        host, _, port = args.gateway.rpartition(":")
        if not host or not port.isdigit():
            print(f"--gateway expects HOST:PORT, got {args.gateway!r}")
            return 2
        client = VoterClient(host, int(port), timeout=10.0)
        client.connect()
        client.negotiate("auto")
        dispatch = client.request
        # Remote topology is unknown, so the shards-down rule stays off.
        rules = default_alert_rules()
        target = args.gateway
    else:
        from .cluster.supervisor import FusionCluster
        from .vdx.examples import AVOC_SPEC
        from .vdx.spec import VotingSpec

        spec = VotingSpec.from_file(args.spec) if args.spec else AVOC_SPEC
        cluster = FusionCluster(
            spec,
            n_shards=args.shards,
            replicas=args.replicas,
            mode=args.mode,
            store=args.store,
        )
        cluster.start()
        gateway = cluster.gateway
        rules = default_alert_rules(args.shards)
        target = "%s:%d" % cluster.address
    if args.rules:
        with open(args.rules, "r", encoding="utf-8") as handle:
            rules = [AlertRule.from_dict(item) for item in json.load(handle)]
    notifiers = [LogNotifier()]
    if args.alert_log:
        notifiers.append(FileNotifier(args.alert_log))
    dash = DashboardServer(
        gateway=gateway,
        dispatch=dispatch,
        rules=rules,
        notifiers=notifiers,
        interval=args.interval,
        host=args.host,
        port=args.port,
    )
    dash.start()
    host, port = dash.address
    print(f"operations dashboard at http://{host}:{port}/ (cluster: {target})")
    print("endpoints: / (HTML)  /metrics  /api/snapshot  /api/alerts  "
          "/api/stream (SSE)")
    print(f"alert rules: {', '.join(rule.name for rule in rules) or '(none)'}")
    try:
        if not args.once:
            import threading

            threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        if args.metrics:
            try:
                _print_shard_metrics(dispatch or gateway.dispatch)
            except Exception as exc:  # noqa: BLE001 - shutdown must proceed
                print(f"(per-shard metrics unavailable: {exc})")
        dash.stop()
        if client is not None:
            client.close()
        if cluster is not None:
            cluster.stop()
    return 0


def _cmd_ingest(args) -> int:
    from .cluster.supervisor import FusionCluster
    from .ingest import AsyncIngestServer
    from .vdx.examples import AVOC_SPEC
    from .vdx.spec import VotingSpec

    spec = VotingSpec.from_file(args.spec) if args.spec else AVOC_SPEC
    cluster = FusionCluster(
        spec,
        n_shards=args.shards,
        replicas=args.replicas,
        mode=args.mode,
        store=args.store,
        max_resident_series=_resident_bound(args.max_resident_series),
    )
    cluster.start()
    ingest = AsyncIngestServer(
        cluster.gateway,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        coalesce_window=args.coalesce_window,
    )
    ingest.start()
    host, port = ingest.address
    print(
        f"async ingest tier for '{spec.algorithm_name}' listening on "
        f"{host}:{port} ({args.shards} shards, {args.replicas} replicas)"
    )
    print("protocol: dual-framed (v2 JSON lines / v3 binary frames); "
          "connect with repro.connect()")
    if args.once:
        ingest.stop()
        cluster.stop()
        return 0
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        ingest.stop()
        cluster.stop()
    return 0


def _cmd_fuse(args) -> int:
    from .datasets.loader import load_csv
    from .fusion.engine import FusionEngine
    from .vdx.factory import build_engine
    from .vdx.spec import VotingSpec
    from .voting.registry import create_voter

    dataset = load_csv(args.csv)
    if args.spec:
        engine = build_engine(VotingSpec.from_file(args.spec))
    else:
        engine = FusionEngine(create_voter(args.algorithm))
    results = engine.process_batch(
        dataset.matrix, modules=dataset.modules, diagnostics=True
    ).to_results()
    writer = open(args.output, "w", encoding="utf-8") if args.output else sys.stdout
    try:
        writer.write("round,value,status,excluded\n")
        for result in results:
            value = "" if result.value is None else repr(float(result.value))
            writer.write(
                f"{result.round_number},{value},{result.status},"
                f"{'|'.join(result.excluded)}\n"
            )
    finally:
        if args.output:
            writer.close()
            print(f"wrote {len(results)} fused rounds to {args.output}")
    return 0


def _live_tune_space(algorithm: str):
    """The discrete deployable-config space ``tune --live`` sweeps.

    Discrete on purpose: live trials cost a cluster reconfiguration
    plus a full scenario replay, and a small closed set of candidate
    configs (a) is what a capacity-planning run actually compares and
    (b) makes random draws collide, so the trial memoization cache
    does real work.
    """
    from .tuning import Choice, ParameterSpace, live_base_params

    return ParameterSpace(
        {
            "error": Choice([0.03, 0.06, 0.12]),
            "collation": Choice(["MEAN", "MEDIAN"]),
        },
        base=live_base_params(algorithm),
    )


def _cmd_tune(args) -> int:
    from .analysis.report import render_table
    from .datasets.injection import offset_fault
    from .datasets.light_uc1 import UC1Config, generate_uc1_dataset
    from .tuning import (
        Choice,
        Continuous,
        ParameterSpace,
        genetic_search,
        grid_search,
        random_search,
        uc1_fault_recovery_objective,
    )
    from .voting.registry import create_voter

    clean = generate_uc1_dataset(UC1Config(n_rounds=args.rounds))
    faulty = offset_fault(clean, "E4", 6.0)
    if args.live:
        from .service.client import VoterClient
        from .tuning import (
            LiveObjective,
            live_genetic_search,
            live_grid_search,
            live_random_search,
        )

        host, _, port = args.live.rpartition(":")
        if not host or not port.isdigit():
            print(f"--live expects HOST:PORT, got {args.live!r}")
            return 2
        space = _live_tune_space(args.algorithm)
        client = VoterClient(host, int(port), timeout=60.0)
        client.connect()
        client.negotiate("auto")
        try:
            objective = LiveObjective(
                client.request, clean, faulty, algorithm=args.algorithm
            )
            if args.method == "grid":
                result = live_grid_search(
                    objective, space, points_per_dimension=args.points
                )
            elif args.method == "genetic":
                result = live_genetic_search(
                    objective, space, population_size=12,
                    generations=args.points, seed=args.seed,
                )
            else:
                result = live_random_search(
                    objective, space, n_trials=args.trials, seed=args.seed
                )
        finally:
            client.close()
        print(
            f"evaluated {result.n_trials} configurations ({args.method}, "
            f"live against {args.live}; {objective.trials} cluster "
            f"evaluations, {result.cache_hits} cache hits)"
        )
        rows = [
            [
                round(t.assignment["error"], 4),
                t.assignment["collation"],
                round(t.score, 3),
            ]
            for t in result.top(5)
        ]
        print(render_table(["error", "collation", "score"], rows))
        print(f"\nbest: {result.best_assignment} -> score {result.best_score:.3f}")
        return 0
    objective = uc1_fault_recovery_objective(clean, faulty, algorithm=args.algorithm)
    base = create_voter(args.algorithm).params
    space = ParameterSpace(
        {
            "error": Continuous(0.02, 0.15),
            "soft_threshold": Continuous(1.0, 4.0),
            "collation": Choice(["MEAN", "MEAN_NEAREST_NEIGHBOR", "MEDIAN"]),
        },
        base=base,
    )
    if args.method == "grid":
        result = grid_search(objective, space, points_per_dimension=args.points)
    elif args.method == "genetic":
        result = genetic_search(
            objective, space, population_size=12, generations=args.points
        )
    else:
        result = random_search(
            objective, space, n_trials=args.trials, seed=args.seed
        )
    print(f"evaluated {result.n_trials} configurations ({args.method})")
    rows = [
        [
            round(t.assignment["error"], 4),
            round(t.assignment["soft_threshold"], 2),
            t.assignment["collation"],
            round(t.score, 3),
        ]
        for t in result.top(5)
    ]
    print(render_table(["error", "soft_threshold", "collation", "score"], rows))
    print(f"\nbest: {result.best_assignment} -> score {result.best_score:.3f}")
    return 0


def _parse_names(text: str):
    """``"all"`` or a comma-separated name list → sweep argument."""
    if text == "all":
        return "all"
    return tuple(name.strip() for name in text.split(",") if name.strip())


def _cmd_adversarial(args) -> int:
    from .experiments import run_adversarial_sweep

    severities = tuple(float(s) for s in args.severities.split(","))
    result = run_adversarial_sweep(
        scenarios=_parse_names(args.scenarios),
        algorithms=_parse_names(args.algorithms),
        severities=severities,
        rounds=args.rounds,
        seed=args.seed,
        warmup=args.warmup,
        workers=args.workers,
    )
    rendered = result.to_json() if args.format == "json" else result.to_markdown()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote adversarial ranking to {args.output}")
    else:
        print(rendered, end="")
    return 0


def _cmd_latency(args) -> int:
    from .analysis.report import render_table
    from .types import Round
    from .voting.registry import create_voter

    rng = np.random.default_rng(0)
    rows = []
    for name in ("average", "clustering", "standard", "me", "sdt", "hybrid", "avoc"):
        voter = create_voter(name)
        rounds = [
            Round.from_values(i, list(18.0 + rng.normal(0, 0.1, size=5)))
            for i in range(args.iterations)
        ]
        start = time.perf_counter()
        for r in rounds:
            voter.vote(r)
        elapsed = time.perf_counter() - start
        rows.append([name, f"{elapsed / args.iterations * 1e6:.1f}"])
    print(render_table(["algorithm", "µs / round"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="avoc",
        description="AVOC reproduction: history-aware data fusion for IoT.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the collected metrics (Prometheus text format) after "
             "the command finishes",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("algorithms", help="list available voting algorithms")

    fig6 = sub.add_parser("fig6", help="regenerate Fig. 6 (UC-1 light sensors)")
    fig6.add_argument("--rounds", type=int, default=10_000)
    fig6.add_argument("--seed", type=int, default=1202)
    fig6.add_argument("--tolerance", type=float, default=0.3)
    fig6.add_argument("--export", default=None, help="directory for series CSVs")

    fig7 = sub.add_parser("fig7", help="regenerate Fig. 7 (UC-2 BLE beacons)")
    fig7.add_argument("--seed", type=int, default=2207)
    fig7.add_argument("--margin", type=float, default=5.0)
    fig7.add_argument("--export", default=None, help="directory for series CSVs")

    shelf = sub.add_parser(
        "shelf", help="run the smart-shelf categorical scenario"
    )
    shelf.add_argument("--rounds", type=int, default=500)
    shelf.add_argument("--sensors", type=int, default=24)
    shelf.add_argument("--defective", type=int, default=3)
    shelf.add_argument("--history", choices=("none", "standard", "me"),
                       default="me")

    compare = sub.add_parser(
        "compare", help="compare all algorithms on one round of values (Fig. 5)"
    )
    compare.add_argument("--values", required=True, help="comma-separated floats")
    compare.add_argument("--algorithms", default=None)

    vdx = sub.add_parser("vdx", help="validate a VDX document / describe the schema")
    vdx.add_argument("file", nargs="?", default=None)
    vdx.add_argument("--describe", action="store_true")

    simulate = sub.add_parser("simulate", help="run a deployment simulation")
    simulate.add_argument("use_case", choices=("uc1", "uc2"))
    simulate.add_argument("--algorithm", default="avoc")
    simulate.add_argument("--rounds", type=int, default=400)

    adversarial = sub.add_parser(
        "adversarial",
        help="rank algorithms across adversarial threat models",
    )
    adversarial.add_argument(
        "--scenarios", default="all",
        help="comma-separated scenario names, or 'all' (default)",
    )
    adversarial.add_argument(
        "--algorithms", default="all",
        help="comma-separated registry names, or 'all' (default: the "
        "per-kind contender sets)",
    )
    adversarial.add_argument(
        "--severities", default="1,3,6",
        help="comma-separated fault severities (default: 1,3,6)",
    )
    adversarial.add_argument("--rounds", type=int, default=400)
    adversarial.add_argument("--seed", type=int, default=7)
    adversarial.add_argument(
        "--warmup", type=int, default=20,
        help="rounds excluded from the metric while history warms up",
    )
    adversarial.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep grid (results are "
        "identical at any count)",
    )
    adversarial.add_argument(
        "--format", choices=("md", "json"), default="md",
        help="ranking output format (default: markdown tables)",
    )
    adversarial.add_argument(
        "--output", default=None, help="output file (default stdout)"
    )

    latency = sub.add_parser("latency", help="per-round latency of each voter")
    latency.add_argument("--iterations", type=int, default=2000)

    serve = sub.add_parser("serve", help="run a VDX-configured voter service")
    serve.add_argument("--spec", default=None, help="VDX document (default: AVOC)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument(
        "--once", action="store_true",
        help="bind, print the address, and exit (for scripting/tests)",
    )

    cluster = sub.add_parser(
        "cluster", help="run a sharded fusion cluster behind one gateway"
    )
    cluster.add_argument("--spec", default=None, help="VDX document (default: AVOC)")
    cluster.add_argument("--shards", type=int, default=3)
    cluster.add_argument("--replicas", type=int, default=2)
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument("--port", type=int, default=0)
    cluster.add_argument(
        "--history-root", default=None,
        help="directory for per-shard history logs (default: temporary)",
    )
    cluster.add_argument(
        "--mode", choices=("process", "thread"), default=None,
        help="backend isolation (default: process where fork exists)",
    )
    cluster.add_argument(
        "--store", choices=("packed", "jsonl", "sqlite", "memory"),
        default=None,
        help="per-shard history storage tier (default: per-series JSONL "
        "logs; 'packed' scales to millions of series)",
    )
    cluster.add_argument(
        "--max-resident-series", type=int, default=None, metavar="N",
        help="LRU bound on live engines per shard (default: 10000; "
        "0 = unbounded)",
    )
    cluster.add_argument(
        "--once", action="store_true",
        help="start, print the topology, and exit (for scripting/tests)",
    )

    ingest = sub.add_parser(
        "ingest",
        help="run an async binary-framed ingest tier over a fusion cluster",
    )
    ingest.add_argument("--spec", default=None, help="VDX document (default: AVOC)")
    ingest.add_argument("--shards", type=int, default=3)
    ingest.add_argument("--replicas", type=int, default=2)
    ingest.add_argument("--host", default="127.0.0.1")
    ingest.add_argument("--port", type=int, default=0)
    ingest.add_argument(
        "--max-connections", type=int, default=10_000,
        help="connection cap; extra peers are refused with BACKPRESSURE",
    )
    ingest.add_argument(
        "--coalesce-window", type=float, default=0.002,
        help="seconds to gather votes into one vote_batch flush",
    )
    ingest.add_argument(
        "--mode", choices=("process", "thread"), default=None,
        help="backend isolation (default: process where fork exists)",
    )
    ingest.add_argument(
        "--store", choices=("packed", "jsonl", "sqlite", "memory"),
        default=None,
        help="per-shard history storage tier (default: per-series JSONL "
        "logs; 'packed' scales to millions of series)",
    )
    ingest.add_argument(
        "--max-resident-series", type=int, default=None, metavar="N",
        help="LRU bound on live engines per shard (default: 10000; "
        "0 = unbounded)",
    )
    ingest.add_argument(
        "--once", action="store_true",
        help="start, print the address, and exit (for scripting/tests)",
    )

    fuse = sub.add_parser("fuse", help="fuse a recorded CSV dataset")
    fuse.add_argument("csv", help="rounds x modules CSV (empty cell = missing)")
    fuse.add_argument("--spec", default=None, help="VDX document to vote with")
    fuse.add_argument("--algorithm", default="avoc")
    fuse.add_argument("--output", default=None, help="output CSV (default stdout)")

    diagnose = sub.add_parser(
        "diagnose", help="per-module reliability report for a recorded CSV"
    )
    diagnose.add_argument("csv")
    diagnose.add_argument("--algorithm", default="avoc")

    tune = sub.add_parser("tune", help="search voting parameters on UC-1")
    tune.add_argument("--algorithm", default="avoc")
    tune.add_argument(
        "--method", choices=("grid", "genetic", "random"), default="grid"
    )
    tune.add_argument("--rounds", type=int, default=300)
    tune.add_argument(
        "--points", type=int, default=4,
        help="grid points per dimension, or GA generations",
    )
    tune.add_argument(
        "--trials", type=int, default=8,
        help="random-search trial count",
    )
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument(
        "--live", default=None, metavar="HOST:PORT",
        help="run trials against a running cluster gateway instead of "
        "in-process (bit-identical ranking; the cluster is reconfigured "
        "per trial)",
    )

    dashboard = sub.add_parser(
        "dashboard",
        help="serve the live-operations dashboard (HTML + /metrics + SSE)",
    )
    dashboard.add_argument(
        "--gateway", default=None, metavar="HOST:PORT",
        help="attach to a running cluster gateway (default: boot a local "
        "cluster)",
    )
    dashboard.add_argument("--spec", default=None, help="VDX document (default: AVOC)")
    dashboard.add_argument("--shards", type=int, default=2)
    dashboard.add_argument("--replicas", type=int, default=2)
    dashboard.add_argument(
        "--mode", choices=("process", "thread"), default=None,
        help="backend isolation for the booted cluster",
    )
    dashboard.add_argument(
        "--store", choices=("packed", "jsonl", "sqlite", "memory"),
        default=None,
        help="per-shard history storage tier for the booted cluster",
    )
    dashboard.add_argument("--host", default="127.0.0.1")
    dashboard.add_argument("--port", type=int, default=0)
    dashboard.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between snapshot/alert ticks",
    )
    dashboard.add_argument(
        "--rules", default=None, metavar="FILE",
        help="JSON list of alert rules (default: the stock rule set)",
    )
    dashboard.add_argument(
        "--alert-log", default=None, metavar="FILE",
        help="append one JSON line per alert transition to this file",
    )
    dashboard.add_argument(
        "--once", action="store_true",
        help="start, print the address, and exit (for scripting/tests)",
    )

    return parser


_COMMANDS = {
    "algorithms": _cmd_algorithms,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
    "shelf": _cmd_shelf,
    "compare": _cmd_compare,
    "adversarial": _cmd_adversarial,
    "vdx": _cmd_vdx,
    "simulate": _cmd_simulate,
    "latency": _cmd_latency,
    "serve": _cmd_serve,
    "cluster": _cmd_cluster,
    "ingest": _cmd_ingest,
    "fuse": _cmd_fuse,
    "tune": _cmd_tune,
    "diagnose": _cmd_diagnose,
    "dashboard": _cmd_dashboard,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    status = _COMMANDS[args.command](args)
    if args.metrics:
        from .obs import get_default_registry

        rendered = get_default_registry().render()
        print("\n== metrics ==")
        print(rendered if rendered else "(no metrics collected)")
    return status


if __name__ == "__main__":
    sys.exit(main())
