"""Smart-shelf scenario: high-redundancy categorical sensing.

The paper's introduction motivates high redundancy with "smart shopping
scenarios with networked shelf labels, [where] the degree of redundancy
rises significantly to dozens of proximity sensors".  This generator
models that third scenario: a shelf slot watched by N proximity
sensors, each reporting a categorical occupancy state per round.

Ground truth is a seeded occupancy timeline (items picked up and put
back); each sensor reports the true state with a per-sensor accuracy,
flips to a wrong state otherwise, and may drop out entirely.  A
configurable subset of *defective* sensors reports at much lower
accuracy — the categorical analogue of UC-1's faulty module.

The shelf dataset exercises exactly the VDX categorical mode (§6):
weighted-majority collation, standard/Me history, no clustering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import DatasetError

#: The occupancy states a proximity sensor can report.
STATES: Tuple[str, ...] = ("present", "absent")


@dataclass(frozen=True)
class ShelfConfig:
    """Parameters of the smart-shelf generator."""

    n_rounds: int = 500
    n_sensors: int = 24
    flip_probability: float = 0.02
    healthy_accuracy: float = 0.95
    defective_accuracy: float = 0.55
    n_defective: int = 3
    dropout_probability: float = 0.02
    seed: int = 77

    def __post_init__(self):
        if self.n_sensors < 1 or self.n_rounds < 1:
            raise DatasetError("need at least one sensor and one round")
        if self.n_defective >= self.n_sensors / 2:
            raise DatasetError(
                "defective sensors must stay a minority "
                f"({self.n_defective} of {self.n_sensors})"
            )
        for name in ("flip_probability", "healthy_accuracy",
                     "defective_accuracy", "dropout_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise DatasetError(f"{name} must be in [0, 1], got {value}")

    def module_names(self) -> List[str]:
        return [f"P{i + 1}" for i in range(self.n_sensors)]

    def defective_modules(self) -> List[str]:
        return self.module_names()[: self.n_defective]


@dataclass
class ShelfDataset:
    """Rounds × sensors categorical matrix plus the ground truth."""

    config: ShelfConfig
    modules: List[str]
    readings: List[List[Optional[str]]]
    truth: List[str]

    @property
    def n_rounds(self) -> int:
        return len(self.readings)

    def round_values(self, number: int) -> Dict[str, Optional[str]]:
        """One round as a ``{module: state_or_None}`` mapping."""
        return dict(zip(self.modules, self.readings[number]))

    def accuracy_of(self, outputs: List[Optional[str]]) -> float:
        """Fraction of rounds where a fused output matches the truth."""
        if len(outputs) != self.n_rounds:
            raise DatasetError("output length does not match round count")
        correct = sum(
            1 for out, true in zip(outputs, self.truth) if out == true
        )
        return correct / self.n_rounds


def _wrong_state(state: str, rng: np.random.Generator) -> str:
    options = [s for s in STATES if s != state]
    return options[int(rng.integers(len(options)))]


def generate_shelf_dataset(config: ShelfConfig = ShelfConfig()) -> ShelfDataset:
    """Generate the smart-shelf dataset (deterministic per seed)."""
    rng = np.random.default_rng(config.seed)
    truth: List[str] = []
    state = "present"
    for _ in range(config.n_rounds):
        if rng.random() < config.flip_probability:
            state = _wrong_state(state, rng)
        truth.append(state)

    modules = config.module_names()
    defective = set(config.defective_modules())
    readings: List[List[Optional[str]]] = []
    for true_state in truth:
        row: List[Optional[str]] = []
        for module in modules:
            if rng.random() < config.dropout_probability:
                row.append(None)
                continue
            accuracy = (
                config.defective_accuracy
                if module in defective
                else config.healthy_accuracy
            )
            if rng.random() < accuracy:
                row.append(true_state)
            else:
                row.append(_wrong_state(true_state, rng))
        readings.append(row)
    return ShelfDataset(
        config=config, modules=modules, readings=readings, truth=truth
    )
