"""Dataset persistence: CSV and JSON round-trips.

CSV is the interchange format for recorded sensor matrices (one row per
round, optional leading ``time`` column, empty cells = missing values);
JSON additionally carries metadata.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..exceptions import DatasetError
from .dataset import Dataset

PathLike = Union[str, Path]


def save_csv(dataset: Dataset, path: PathLike) -> None:
    """Write a dataset as CSV (``time`` column first when present)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        header = (["time"] if dataset.times is not None else []) + dataset.modules
        writer.writerow(header)
        for i, row in enumerate(dataset.matrix):
            cells: List[str] = []
            if dataset.times is not None:
                cells.append(repr(float(dataset.times[i])))
            cells.extend("" if math.isnan(v) else repr(float(v)) for v in row)
            writer.writerow(cells)


def load_csv(path: PathLike, name: Optional[str] = None) -> Dataset:
    """Read a dataset from CSV written by :func:`save_csv` (or similar)."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file not found: {path}")
    with open(path, "r", newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetError(f"empty dataset file: {path}")
        has_time = bool(header) and header[0].lower() == "time"
        modules = header[1:] if has_time else header
        if not modules:
            raise DatasetError(f"no module columns in {path}")
        times: List[float] = []
        rows: List[List[float]] = []
        for lineno, cells in enumerate(reader, start=2):
            if not cells:
                continue
            expected = len(modules) + (1 if has_time else 0)
            if len(cells) != expected:
                raise DatasetError(
                    f"{path}:{lineno}: expected {expected} cells, got {len(cells)}"
                )
            if has_time:
                times.append(float(cells[0]))
                cells = cells[1:]
            rows.append([float("nan") if c == "" else float(c) for c in cells])
    return Dataset(
        name=name or path.stem,
        modules=list(modules),
        matrix=np.asarray(rows, dtype=float),
        times=np.asarray(times) if has_time else None,
    )


def save_json(dataset: Dataset, path: PathLike) -> None:
    """Write a dataset (matrix + metadata) as a JSON document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "name": dataset.name,
        "modules": dataset.modules,
        "matrix": [
            [None if math.isnan(v) else float(v) for v in row]
            for row in dataset.matrix
        ],
        "times": None if dataset.times is None else [float(t) for t in dataset.times],
        "metadata": dataset.metadata,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)


def load_json(path: PathLike) -> Dataset:
    """Read a dataset from a JSON document written by :func:`save_json`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file not found: {path}")
    with open(path, "r", encoding="utf-8") as fh:
        try:
            document = json.load(fh)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"invalid dataset JSON in {path}: {exc}")
    for key in ("name", "modules", "matrix"):
        if key not in document:
            raise DatasetError(f"dataset JSON missing key {key!r}")
    matrix = np.asarray(
        [
            [float("nan") if v is None else float(v) for v in row]
            for row in document["matrix"]
        ],
        dtype=float,
    )
    times = document.get("times")
    return Dataset(
        name=document["name"],
        modules=list(document["modules"]),
        matrix=matrix,
        times=None if times is None else np.asarray(times, dtype=float),
        metadata=dict(document.get("metadata", {})),
    )
