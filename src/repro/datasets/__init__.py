"""Dataset generators and IO for the paper's two use cases.

* UC-1 (:mod:`repro.datasets.light_uc1`) — 10'000 rounds of concurrent
  measurements from 5 light sensors polled at 8 samples/s (1250 s of
  collection), the reference dataset of Fig. 6.
* UC-2 (:mod:`repro.datasets.ble_uc2`) — 297 RSSI measurements per
  beacon from two stacks of 9 BLE beacons 15 m apart, taken by a robot
  driving between them at 0.09 m/s, the dataset of Fig. 7.

Both generators are deterministic given a seed, standing in for the
paper's recorded hardware datasets.
"""

from .dataset import Dataset
from .light_uc1 import UC1Config, generate_uc1_dataset
from .ble_uc2 import UC2Config, UC2Dataset, generate_uc2_dataset
from .injection import (
    drop_values,
    offset_fault,
    spike_fault,
    stuck_fault,
)
from .scenarios import (
    ScenarioData,
    ScenarioSpec,
    SymbolDataset,
    available_scenarios,
    build_scenario,
    colluding_offset_fault,
    drift_fault,
    flapping_fault,
    flip_flop_fault,
    generate_multirate_dataset,
    generate_symbol_burst,
    scenario_kind,
)
from .loader import load_csv, load_json, save_csv, save_json

__all__ = [
    "Dataset",
    "UC1Config",
    "generate_uc1_dataset",
    "UC2Config",
    "UC2Dataset",
    "generate_uc2_dataset",
    "offset_fault",
    "spike_fault",
    "stuck_fault",
    "drop_values",
    "ScenarioData",
    "ScenarioSpec",
    "SymbolDataset",
    "available_scenarios",
    "build_scenario",
    "colluding_offset_fault",
    "drift_fault",
    "flapping_fault",
    "flip_flop_fault",
    "generate_multirate_dataset",
    "generate_symbol_burst",
    "scenario_kind",
    "load_csv",
    "load_json",
    "save_csv",
    "save_json",
]
