"""UC-2: the BLE beacon tunnel-positioning dataset (§3, Fig. 7).

Two stacks of 9 redundant BLE beacons stand 15 m apart; a robot drives
between them in a straight line at 7 % of its top speed (0.09 m/s),
collecting 297 RSSI measurements per beacon.  The recorded data "lacks
several values as well as mismatched readings in each stack" — i.e.
missing values (unreachable beacons) and per-beacon bias spread — which
is what makes UC-2 the noisy, fault-rich counterpart to UC-1.

The generator models the log-distance path-loss channel per beacon,
per-beacon calibration bias (stack-position / antenna spread), heavy
per-sample fading, and Bernoulli dropouts, all seeded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..exceptions import DatasetError
from ..sensors.array import SensorArray
from ..sensors.ble import BleBeacon
from .dataset import Dataset


@dataclass(frozen=True)
class UC2Config:
    """Parameters of the UC-2 generator (defaults follow §3)."""

    n_rounds: int = 297
    track_length_m: float = 15.0
    robot_speed_mps: float = 0.09
    beacons_per_stack: int = 9
    stack_height_spacing_m: float = 0.1
    tx_power_dbm: float = -59.0
    path_loss_exponent: float = 2.0
    beacon_bias_std_db: float = 2.0
    fading_std_db: float = 4.0
    dropout_probability: float = 0.08
    seed: int = 2207

    @property
    def duration_seconds(self) -> float:
        return self.track_length_m / self.robot_speed_mps

    def stack_names(self) -> Tuple[str, str]:
        return ("A", "B")

    def module_names(self, stack: str) -> List[str]:
        return [f"{stack}{i + 1}" for i in range(self.beacons_per_stack)]


@dataclass
class UC2Dataset:
    """The two per-stack datasets plus the robot's true trajectory."""

    stack_a: Dataset
    stack_b: Dataset
    positions_m: np.ndarray

    @property
    def n_rounds(self) -> int:
        return self.stack_a.n_rounds

    def stacks(self) -> Dict[str, Dataset]:
        return {"A": self.stack_a, "B": self.stack_b}

    def true_closest(self) -> np.ndarray:
        """Ground-truth closest stack per round ('A' or 'B')."""
        track_length = float(self.stack_a.metadata["track_length_m"])
        return np.where(self.positions_m <= track_length / 2.0, "A", "B")


def _robot_position(config: UC2Config, t: float) -> float:
    """Robot x-coordinate at time t, clamped to the track."""
    return min(config.robot_speed_mps * t, config.track_length_m)


def _distance_fn(
    config: UC2Config, stack_x: float, beacon_index: int
) -> Callable[[float], float]:
    """Receiver-to-beacon 3-D distance for one beacon in a stack."""
    height = (beacon_index + 1) * config.stack_height_spacing_m

    def distance(t: float) -> float:
        dx = _robot_position(config, t) - stack_x
        return float(np.hypot(dx, height))

    return distance


def build_uc2_stack(config: UC2Config, stack: str) -> SensorArray:
    """The sensor array for one beacon stack ('A' at x=0, 'B' at x=L)."""
    if stack not in config.stack_names():
        raise DatasetError(f"unknown stack {stack!r}; expected one of ('A', 'B')")
    stack_x = 0.0 if stack == "A" else config.track_length_m
    stack_seed = config.seed + (0 if stack == "A" else 5000)
    bias_rng = np.random.default_rng(stack_seed)
    beacons = []
    for i, name in enumerate(config.module_names(stack)):
        bias = float(bias_rng.normal(0.0, config.beacon_bias_std_db))
        beacons.append(
            BleBeacon(
                name=name,
                distance_fn=_distance_fn(config, stack_x, i),
                tx_power=config.tx_power_dbm,
                path_loss_exponent=config.path_loss_exponent,
                bias=bias,
                noise_std=config.fading_std_db,
                dropout_probability=config.dropout_probability,
                seed=stack_seed + 31 * (i + 1),
            )
        )
    return SensorArray(beacons, name=f"uc2-stack-{stack}")


def generate_uc2_dataset(config: UC2Config = UC2Config()) -> UC2Dataset:
    """Generate the UC-2 dataset: one matrix per stack plus trajectory."""
    times = np.linspace(0.0, config.duration_seconds, config.n_rounds)
    positions = np.minimum(config.robot_speed_mps * times, config.track_length_m)
    datasets = {}
    for stack in config.stack_names():
        array = build_uc2_stack(config, stack)
        matrix = array.sample_matrix(times)
        datasets[stack] = Dataset(
            name=f"uc2-ble-stack-{stack}",
            modules=array.module_names,
            matrix=matrix,
            times=times,
            metadata={
                "use_case": "UC-2 BLE beacon tunnel positioning",
                "unit": "dBm",
                "stack": stack,
                "track_length_m": config.track_length_m,
                "robot_speed_mps": config.robot_speed_mps,
                "seed": config.seed,
                "dropout_probability": config.dropout_probability,
            },
        )
    return UC2Dataset(
        stack_a=datasets["A"], stack_b=datasets["B"], positions_m=positions
    )
