"""Composable adversarial scenario generators.

:mod:`repro.datasets.injection` covers the paper's single-fault
transformations (offset, stuck, spikes, dropout).  This module grows
them into *threat models*: seeded, parameterized generators that
produce a clean/faulty dataset pair (plus ground truth where it
exists) so the experiment layer can rank every algorithm per threat —
see :mod:`repro.experiments.adversarial`.

Numeric scenarios reuse the calibrated UC-1 light signal as the base;
the categorical scenario generates a smart-shelf-style symbol stream.
Every generator is deterministic given ``(rounds, severity, seed)``.

Threat models
-------------

``colluding_pair``
    Two modules apply the *same* offset — a Byzantine pair that agrees
    with itself, defeating pure outlier exclusion.
``flip_flop``
    One module alternates between faulty and healthy every few rounds,
    re-earning trust from slow-decay history schemes between bursts.
``slow_drift``
    Calibration loss: one module drifts linearly away from the truth,
    staying inside the agreement margin for many rounds.
``flapping``
    One module cycles outage/rejoin, returning with a bias after each
    rejoin — availability and correctness coupled.
``multirate``
    Heterogeneous workload: fast/medium/slow modalities with different
    native units (normalized for the vote, quantized in native units)
    and per-modality dropout regimes, plus an offset fault on one fast
    module.
``symbol_burst``
    Categorical: colluding sensors emit the wrong symbol during seeded
    bursts while healthy sensors suffer elevated burst dropout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import DatasetError
from .dataset import Dataset
from .injection import _module_index, _window, offset_fault
from .light_uc1 import UC1Config, generate_uc1_dataset

__all__ = [
    "ScenarioData",
    "ScenarioSpec",
    "SymbolDataset",
    "available_scenarios",
    "build_scenario",
    "colluding_offset_fault",
    "drift_fault",
    "flapping_fault",
    "flip_flop_fault",
    "generate_multirate_dataset",
    "generate_symbol_burst",
    "scenario_kind",
]


# ---------------------------------------------------------------------------
# Composable numeric injectors (grown out of injection.py)
# ---------------------------------------------------------------------------


def colluding_offset_fault(
    dataset: Dataset,
    modules: Tuple[str, ...],
    delta: float,
    start_round: int = 0,
    end_round: Optional[int] = None,
) -> Dataset:
    """Apply the *same* offset to several modules (a Byzantine pair).

    Colluders agree with each other, so schemes that only look for
    isolated outliers (or exclude by deviation from the mean) can be
    pulled toward the colluding cluster.
    """
    if len(modules) < 2:
        raise DatasetError("collusion needs at least two modules")
    if len(set(modules)) != len(modules):
        raise DatasetError(f"colluding modules must be distinct, got {modules}")
    if len(modules) * 2 > len(dataset.modules):
        raise DatasetError(
            f"colluders must stay a minority ({len(modules)} of "
            f"{len(dataset.modules)})"
        )
    indices = [_module_index(dataset, m) for m in modules]
    start, end = _window(dataset, start_round, end_round)
    matrix = dataset.matrix.copy()
    for idx in indices:
        matrix[start:end, idx] += delta
    return dataset.with_matrix(
        matrix,
        suffix="collusion",
        fault={"type": "collusion", "modules": list(modules), "delta": delta,
               "start_round": start, "end_round": end},
    )


def flip_flop_fault(
    dataset: Dataset,
    module: str,
    delta: float,
    period: int = 10,
    start_round: int = 0,
    end_round: Optional[int] = None,
) -> Dataset:
    """Toggle an offset on and off every ``period`` rounds.

    The module is faulty for ``period`` rounds, healthy for the next
    ``period``, and so on — long enough to poison naive averaging,
    short enough to re-earn trust from slowly-decaying history records
    before the next burst.
    """
    if period < 1:
        raise DatasetError(f"period must be at least 1 round, got {period}")
    idx = _module_index(dataset, module)
    start, end = _window(dataset, start_round, end_round)
    matrix = dataset.matrix.copy()
    offsets = np.arange(end - start) // period % 2 == 0
    matrix[start:end, idx] += np.where(offsets, delta, 0.0)
    return dataset.with_matrix(
        matrix,
        suffix=f"flipflop-{module}",
        fault={"type": "flip_flop", "module": module, "delta": delta,
               "period": period, "start_round": start, "end_round": end},
    )


def drift_fault(
    dataset: Dataset,
    module: str,
    total_drift: float,
    start_round: int = 0,
    end_round: Optional[int] = None,
) -> Dataset:
    """Linear calibration drift from 0 to ``total_drift`` over the window."""
    idx = _module_index(dataset, module)
    start, end = _window(dataset, start_round, end_round)
    if end - start < 2:
        raise DatasetError("drift needs a window of at least two rounds")
    matrix = dataset.matrix.copy()
    ramp = np.linspace(0.0, float(total_drift), end - start)
    matrix[start:end, idx] += ramp
    return dataset.with_matrix(
        matrix,
        suffix=f"drift-{module}",
        fault={"type": "drift", "module": module, "total_drift": total_drift,
               "start_round": start, "end_round": end},
    )


def flapping_fault(
    dataset: Dataset,
    module: str,
    outage: int = 15,
    uptime: int = 25,
    delta: float = 0.0,
    start_round: int = 0,
    end_round: Optional[int] = None,
) -> Dataset:
    """Cycle one module through outage/rejoin, biased after each rejoin.

    The module goes dark (NaN) for ``outage`` rounds, rejoins for
    ``uptime`` rounds reporting with a ``delta`` bias, then flaps
    again.  Exercises roster handling, quorum interaction, and how
    quickly a scheme re-trusts (or keeps distrusting) a returning
    sensor.
    """
    if outage < 1 or uptime < 1:
        raise DatasetError(
            f"outage and uptime must be at least 1 round, got "
            f"outage={outage} uptime={uptime}"
        )
    idx = _module_index(dataset, module)
    start, end = _window(dataset, start_round, end_round)
    matrix = dataset.matrix.copy()
    phase = np.arange(end - start) % (outage + uptime)
    dark = phase < outage
    column = matrix[start:end, idx]
    column = np.where(dark, np.nan, column + delta)
    matrix[start:end, idx] = column
    return dataset.with_matrix(
        matrix,
        suffix=f"flapping-{module}",
        fault={"type": "flapping", "module": module, "outage": outage,
               "uptime": uptime, "delta": delta,
               "start_round": start, "end_round": end},
    )


# ---------------------------------------------------------------------------
# Heterogeneous multi-rate / multi-unit workload
# ---------------------------------------------------------------------------

#: (name, unit, unit_scale, sample_every, dropout, noise_std) per module.
#: Values are normalized to the common latent unit for the vote; the
#: native-unit quantization step leaves each modality with a different
#: resolution artefact, as in a real mixed radar/audio/pressure fusion.
_MULTIRATE_MODALITIES: Tuple[Tuple[str, str, float, int, float, float], ...] = (
    ("F1", "lux", 1000.0, 1, 0.02, 0.05),
    ("F2", "lux", 1000.0, 1, 0.02, 0.05),
    ("M1", "kilolumen", 1.0, 2, 0.05, 0.08),
    ("M2", "kilolumen", 1.0, 2, 0.05, 0.08),
    ("S1", "centilumen", 100_000.0, 5, 0.10, 0.12),
    ("S2", "centilumen", 100_000.0, 5, 0.10, 0.12),
)


def generate_multirate_dataset(
    rounds: int = 400,
    seed: int = 7,
    base: Optional[Dataset] = None,
) -> Dataset:
    """Six modules at three rates/units tracking one latent signal.

    The latent signal is the per-round median of a clean UC-1 dataset,
    so the workload stays anchored to the paper's calibrated sensor
    model.  Each module samples every ``sample_every`` rounds (NaN in
    between), quantizes in its native unit, and drops out at its
    modality's rate.
    """
    if rounds < 10:
        raise DatasetError(f"multirate needs at least 10 rounds, got {rounds}")
    if base is None:
        base = generate_uc1_dataset(UC1Config(n_rounds=rounds))
    if base.n_rounds < rounds:
        raise DatasetError(
            f"base dataset has {base.n_rounds} rounds, need {rounds}"
        )
    latent = np.median(base.matrix[:rounds], axis=1)
    rng = np.random.default_rng(seed)
    columns = []
    for _name, _unit, scale, every, dropout, noise in _MULTIRATE_MODALITIES:
        native = (latent + rng.normal(0.0, noise, rounds)) * scale
        column = np.round(native) / scale
        ticks = np.arange(rounds) % every != 0
        column[ticks] = np.nan
        column[rng.random(rounds) < dropout] = np.nan
        columns.append(column)
    matrix = np.column_stack(columns)
    return Dataset(
        name="multirate",
        modules=[m[0] for m in _MULTIRATE_MODALITIES],
        matrix=matrix,
        metadata={
            "seed": seed,
            "modalities": {
                name: {"unit": unit, "unit_scale": scale,
                       "sample_every": every, "dropout": dropout}
                for name, unit, scale, every, dropout, _ in _MULTIRATE_MODALITIES
            },
        },
    )


# ---------------------------------------------------------------------------
# Categorical symbol-burst scenario
# ---------------------------------------------------------------------------


@dataclass
class SymbolDataset:
    """Rounds × sensors categorical readings plus the ground truth."""

    modules: List[str]
    readings: List[List[Optional[str]]]
    truth: List[str]
    metadata: Dict = field(default_factory=dict)

    @property
    def n_rounds(self) -> int:
        return len(self.readings)

    def round_values(self, number: int) -> Dict[str, Optional[str]]:
        return dict(zip(self.modules, self.readings[number]))


_SYMBOL_STATES = ("present", "absent")


def generate_symbol_burst(
    rounds: int = 400,
    severity: float = 1.0,
    seed: int = 7,
    n_sensors: int = 9,
    n_colluders: int = 3,
    flip_probability: float = 0.0,
    burst_length: int = 12,
    burst_every: int = 40,
) -> Tuple[SymbolDataset, SymbolDataset]:
    """Clean and attacked symbol streams for the categorical rankers.

    Ground truth is a stable occupancy state by default (set
    ``flip_probability`` for a slowly-flipping regime; regime-change
    robustness is the drift scenarios' domain).  In the attacked
    stream, ``n_colluders`` sensors emit the *wrong* symbol during
    periodic bursts while the healthy sensors simultaneously drop out
    at a severity-scaled rate — so during a burst the colluders can
    hold a plurality of the present readings.  Between bursts the
    colluders behave honestly, re-earning full trust from bounded
    reward/penalty history records before every burst; once the wrong
    symbol wins one round, the majority's own updates reward the
    colluders and penalise the healthy sensors, locking the error in
    for the rest of the burst.  A symbol prior breaks that feedback
    loop.  Severity scales the healthy burst dropout; the returned
    pair shares the same truth and the same healthy noise, differing
    only in the attack.
    """
    if n_colluders * 2 >= n_sensors:
        raise DatasetError(
            f"colluders must stay a minority ({n_colluders} of {n_sensors})"
        )
    if rounds < burst_every:
        raise DatasetError(
            f"need at least {burst_every} rounds for one burst, got {rounds}"
        )
    if severity <= 0:
        raise DatasetError(f"severity must be positive, got {severity}")
    rng = np.random.default_rng(seed)
    truth: List[str] = []
    state = _SYMBOL_STATES[0]
    for _ in range(rounds):
        if rng.random() < flip_probability:
            state = (
                _SYMBOL_STATES[1] if state == _SYMBOL_STATES[0]
                else _SYMBOL_STATES[0]
            )
        truth.append(state)

    modules = [f"P{i + 1}" for i in range(n_sensors)]
    colluders = set(modules[:n_colluders])
    burst_dropout = min(0.95, 0.1 + 0.13 * severity)
    base_accuracy = 0.97
    base_dropout = 0.02

    clean_rows: List[List[Optional[str]]] = []
    attacked_rows: List[List[Optional[str]]] = []
    for number, true_state in enumerate(truth):
        wrong = (
            _SYMBOL_STATES[1] if true_state == _SYMBOL_STATES[0]
            else _SYMBOL_STATES[0]
        )
        in_burst = number % burst_every < burst_length
        clean_row: List[Optional[str]] = []
        attacked_row: List[Optional[str]] = []
        for module in modules:
            # One draw pair per (round, module) in both streams keeps
            # the healthy behaviour identical between clean/attacked.
            drop_draw = rng.random()
            value_draw = rng.random()
            honest: Optional[str]
            if drop_draw < base_dropout:
                honest = None
            elif value_draw < base_accuracy:
                honest = true_state
            else:
                honest = wrong
            clean_row.append(honest)
            if module in colluders:
                attacked_row.append(wrong if in_burst else honest)
            elif in_burst and drop_draw < burst_dropout:
                attacked_row.append(None)
            else:
                attacked_row.append(honest)
        clean_rows.append(clean_row)
        attacked_rows.append(attacked_row)

    meta = {
        "seed": seed,
        "severity": severity,
        "colluders": sorted(colluders),
        "burst_length": burst_length,
        "burst_every": burst_every,
        "burst_dropout": burst_dropout,
    }
    clean = SymbolDataset(
        modules=list(modules), readings=clean_rows, truth=list(truth),
        metadata=dict(meta, attacked=False),
    )
    attacked = SymbolDataset(
        modules=list(modules), readings=attacked_rows, truth=list(truth),
        metadata=dict(meta, attacked=True),
    )
    return clean, attacked


# ---------------------------------------------------------------------------
# Scenario registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioData:
    """One built scenario: the clean/faulty pair plus bookkeeping.

    ``clean``/``faulty`` are :class:`Dataset` for numeric scenarios and
    :class:`SymbolDataset` (with ``truth``) for categorical ones.
    """

    name: str
    kind: str  # "numeric" | "categorical"
    clean: object
    faulty: object
    faulty_modules: Tuple[str, ...]
    severity: float
    seed: int


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, parameterized scenario generator."""

    name: str
    kind: str
    description: str
    build: Callable[..., ScenarioData]


def _uc1_base(rounds: int, base: Optional[Dataset]) -> Dataset:
    if base is not None:
        if base.n_rounds < rounds:
            raise DatasetError(
                f"base dataset has {base.n_rounds} rounds, need {rounds}"
            )
        return base.slice(0, rounds) if base.n_rounds > rounds else base
    return generate_uc1_dataset(UC1Config(n_rounds=rounds))


def _build_colluding_pair(rounds, severity, seed, base=None) -> ScenarioData:
    clean = _uc1_base(rounds, base)
    start = rounds // 8
    faulty = colluding_offset_fault(
        clean, ("E1", "E2"), float(severity), start_round=start
    )
    return ScenarioData("colluding_pair", "numeric", clean, faulty,
                        ("E1", "E2"), float(severity), seed)


def _build_flip_flop(rounds, severity, seed, base=None) -> ScenarioData:
    clean = _uc1_base(rounds, base)
    start = rounds // 8
    faulty = flip_flop_fault(
        clean, "E1", float(severity), period=10, start_round=start
    )
    return ScenarioData("flip_flop", "numeric", clean, faulty,
                        ("E1",), float(severity), seed)


def _build_slow_drift(rounds, severity, seed, base=None) -> ScenarioData:
    clean = _uc1_base(rounds, base)
    start = rounds // 4
    faulty = drift_fault(clean, "E3", float(severity), start_round=start)
    return ScenarioData("slow_drift", "numeric", clean, faulty,
                        ("E3",), float(severity), seed)


def _build_flapping(rounds, severity, seed, base=None) -> ScenarioData:
    clean = _uc1_base(rounds, base)
    start = rounds // 8
    faulty = flapping_fault(
        clean, "E2", outage=15, uptime=25,
        delta=float(severity), start_round=start,
    )
    return ScenarioData("flapping", "numeric", clean, faulty,
                        ("E2",), float(severity), seed)


def _build_multirate(rounds, severity, seed, base=None) -> ScenarioData:
    clean = generate_multirate_dataset(rounds, seed=seed, base=base)
    start = rounds // 8
    faulty = offset_fault(clean, "F2", float(severity), start_round=start)
    return ScenarioData("multirate", "numeric", clean, faulty,
                        ("F2",), float(severity), seed)


def _build_symbol_burst(rounds, severity, seed, base=None) -> ScenarioData:
    clean, attacked = generate_symbol_burst(rounds, float(severity), seed)
    return ScenarioData(
        "symbol_burst", "categorical", clean, attacked,
        tuple(attacked.metadata["colluders"]), float(severity), seed,
    )


SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            "colluding_pair", "numeric",
            "Byzantine pair applies the same offset to two modules",
            _build_colluding_pair,
        ),
        ScenarioSpec(
            "flip_flop", "numeric",
            "one module toggles a burst offset every 10 rounds",
            _build_flip_flop,
        ),
        ScenarioSpec(
            "slow_drift", "numeric",
            "one module drifts linearly out of calibration",
            _build_slow_drift,
        ),
        ScenarioSpec(
            "flapping", "numeric",
            "one module cycles outage/rejoin, biased after each rejoin",
            _build_flapping,
        ),
        ScenarioSpec(
            "multirate", "numeric",
            "multi-rate/multi-unit modalities with dropout regimes "
            "plus an offset fault",
            _build_multirate,
        ),
        ScenarioSpec(
            "symbol_burst", "categorical",
            "colluding sensors flood the wrong symbol during dropout bursts",
            _build_symbol_burst,
        ),
    )
}


def available_scenarios() -> Tuple[str, ...]:
    """Names of all registered scenarios, sorted."""
    return tuple(sorted(SCENARIOS))


def scenario_kind(name: str) -> str:
    """``"numeric"`` or ``"categorical"`` for a registered scenario."""
    try:
        return SCENARIOS[name].kind
    except KeyError:
        raise DatasetError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        )


def build_scenario(
    name: str,
    rounds: int = 400,
    severity: float = 1.0,
    seed: int = 7,
    base: Optional[Dataset] = None,
) -> ScenarioData:
    """Build one scenario by name (deterministic per rounds/severity/seed).

    ``base`` optionally supplies a pre-generated clean UC-1 dataset for
    the numeric scenarios (sliced to ``rounds``), so a sweep can share
    one base across workers instead of regenerating it per cell.
    """
    if rounds < 16:
        raise DatasetError(f"scenarios need at least 16 rounds, got {rounds}")
    if severity <= 0:
        raise DatasetError(f"severity must be positive, got {severity}")
    try:
        spec = SCENARIOS[name]
    except KeyError:
        raise DatasetError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        )
    return spec.build(rounds, severity, seed, base=base)
