"""Error injection on recorded datasets.

The paper's UC-1 error experiment "injected an artificial outlier
sensor, by adding +6 lumen to one of the sensors" (+6 on the
kilolumen-scaled axis) — :func:`offset_fault` is that transformation.
The other injectors cover the fault families used by the wider test
suite and the ablation benchmarks.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import DatasetError
from .dataset import Dataset


def _module_index(dataset: Dataset, module: str) -> int:
    try:
        return dataset.modules.index(module)
    except ValueError:
        raise DatasetError(f"no module named {module!r} in dataset {dataset.name!r}")


def _window(
    dataset: Dataset, start_round: int, end_round: Optional[int]
) -> Tuple[int, int]:
    """Validated ``[start, end)`` round window for an injector.

    Out-of-range windows raise instead of silently clamping/no-op'ing:
    an injector that targets rounds the dataset does not have is a
    caller bug, and a silently unmodified "faulty" dataset poisons any
    experiment built on it.
    """
    if start_round < 0:
        raise DatasetError("start_round must be non-negative")
    if start_round >= dataset.n_rounds:
        raise DatasetError(
            f"start_round {start_round} is beyond dataset "
            f"{dataset.name!r} ({dataset.n_rounds} rounds)"
        )
    end = dataset.n_rounds if end_round is None else end_round
    if end < start_round:
        raise DatasetError("end_round precedes start_round")
    if end > dataset.n_rounds:
        raise DatasetError(
            f"end_round {end} is beyond dataset "
            f"{dataset.name!r} ({dataset.n_rounds} rounds)"
        )
    return start_round, end


def offset_fault(
    dataset: Dataset,
    module: str,
    delta: float,
    start_round: int = 0,
    end_round: Optional[int] = None,
) -> Dataset:
    """Add a constant offset to one module's values (the UC-1 fault)."""
    idx = _module_index(dataset, module)
    start, end = _window(dataset, start_round, end_round)
    matrix = dataset.matrix.copy()
    matrix[start:end, idx] += delta
    return dataset.with_matrix(
        matrix,
        suffix=f"fault-{module}",
        fault={"type": "offset", "module": module, "delta": delta,
               "start_round": start, "end_round": end},
    )


def stuck_fault(
    dataset: Dataset,
    module: str,
    stuck_value: float,
    start_round: int = 0,
    end_round: Optional[int] = None,
) -> Dataset:
    """Freeze one module at a constant value."""
    idx = _module_index(dataset, module)
    start, end = _window(dataset, start_round, end_round)
    matrix = dataset.matrix.copy()
    matrix[start:end, idx] = stuck_value
    return dataset.with_matrix(
        matrix,
        suffix=f"stuck-{module}",
        fault={"type": "stuck", "module": module, "value": stuck_value,
               "start_round": start, "end_round": end},
    )


def spike_fault(
    dataset: Dataset,
    module: str,
    magnitude: float,
    probability: float = 0.05,
    seed: int = 0,
    start_round: int = 0,
    end_round: Optional[int] = None,
) -> Dataset:
    """Random ±magnitude spikes on one module with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise DatasetError("spike probability must be in [0, 1]")
    idx = _module_index(dataset, module)
    start, end = _window(dataset, start_round, end_round)
    rng = np.random.default_rng(seed)
    matrix = dataset.matrix.copy()
    window = slice(start, end)
    hits = rng.random(end - start) < probability
    signs = np.where(rng.random(end - start) < 0.5, -1.0, 1.0)
    matrix[window, idx] = matrix[window, idx] + hits * signs * magnitude
    return dataset.with_matrix(
        matrix,
        suffix=f"spikes-{module}",
        fault={"type": "spike", "module": module, "magnitude": magnitude,
               "probability": probability, "seed": seed},
    )


def drop_values(
    dataset: Dataset,
    module: str,
    probability: float,
    seed: int = 0,
    start_round: int = 0,
    end_round: Optional[int] = None,
) -> Dataset:
    """Replace one module's values with NaN at the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise DatasetError("dropout probability must be in [0, 1]")
    idx = _module_index(dataset, module)
    start, end = _window(dataset, start_round, end_round)
    rng = np.random.default_rng(seed)
    matrix = dataset.matrix.copy()
    hits = rng.random(end - start) < probability
    column = matrix[start:end, idx]
    column[hits] = np.nan
    matrix[start:end, idx] = column
    return dataset.with_matrix(
        matrix,
        suffix=f"dropout-{module}",
        fault={"type": "dropout", "module": module, "probability": probability,
               "seed": seed},
    )
