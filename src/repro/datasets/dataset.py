"""The :class:`Dataset` container: a recorded rounds × modules matrix."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from ..exceptions import DatasetError
from ..types import Round, is_missing


@dataclass
class Dataset:
    """A recorded multi-sensor dataset.

    Attributes:
        name: dataset label.
        modules: module (column) names.
        matrix: rounds × modules float matrix; NaN marks missing values.
        times: per-round timestamps (seconds), same length as rounds.
        metadata: free-form provenance (seed, config, fault description).
    """

    name: str
    modules: List[str]
    matrix: np.ndarray
    times: Optional[np.ndarray] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        self.matrix = np.asarray(self.matrix, dtype=float)
        if self.matrix.ndim != 2:
            raise DatasetError(f"matrix must be 2-D, got shape {self.matrix.shape}")
        if self.matrix.shape[1] != len(self.modules):
            raise DatasetError(
                f"matrix has {self.matrix.shape[1]} columns but "
                f"{len(self.modules)} module names were given"
            )
        if self.times is not None:
            self.times = np.asarray(self.times, dtype=float)
            if self.times.shape[0] != self.matrix.shape[0]:
                raise DatasetError("times length does not match round count")

    @property
    def n_rounds(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_modules(self) -> int:
        return self.matrix.shape[1]

    def column(self, module: str) -> np.ndarray:
        """One module's full value series."""
        try:
            idx = self.modules.index(module)
        except ValueError:
            raise DatasetError(f"no module named {module!r} in dataset {self.name!r}")
        return self.matrix[:, idx]

    def rounds(self) -> Iterator[Round]:
        """Iterate the dataset as voting rounds (NaN becomes missing)."""
        for number, row in enumerate(self.matrix):
            mapping = {
                m: (None if is_missing(v) else float(v))
                for m, v in zip(self.modules, row)
            }
            timestamp = float(self.times[number]) if self.times is not None else 0.0
            yield Round.from_mapping(number, mapping, timestamp=timestamp)

    def slice(self, start: int, stop: Optional[int] = None) -> "Dataset":
        """A new dataset restricted to rounds [start, stop)."""
        return Dataset(
            name=self.name,
            modules=list(self.modules),
            matrix=self.matrix[start:stop].copy(),
            times=None if self.times is None else self.times[start:stop].copy(),
            metadata=dict(self.metadata),
        )

    def with_matrix(self, matrix: np.ndarray, suffix: str, **metadata) -> "Dataset":
        """Derive a dataset with a replaced matrix (fault injection)."""
        merged = dict(self.metadata)
        merged.update(metadata)
        return Dataset(
            name=f"{self.name}-{suffix}",
            modules=list(self.modules),
            matrix=matrix,
            times=None if self.times is None else self.times.copy(),
            metadata=merged,
        )

    def missing_fraction(self) -> float:
        """Fraction of NaN entries over the whole matrix."""
        return float(np.isnan(self.matrix).mean())
