"""UC-1: the smart-building light sensor reference dataset (§3, Fig. 6-a).

The paper records 10'000 rounds of concurrent measurements from 5
LUX1000 sensors polled at 8 samples/s (1250 s).  The published raw
plot shows all five sensors tracking a shared sunlight level in the
17–20 kilolumen band with a stable per-sensor vertical spread of well
under the 5 % agreement margin.

The generator models exactly that: a shared ground truth (slow sinusoid
for the sun's arc plus a clamped random walk for clouds/reflections),
per-sensor calibration biases, and per-sample Gaussian noise.  Sensor
E3 is deliberately the low outlier of the healthy pack (bias −0.45),
which the paper's narrative relies on: E3 is the module occasionally
excluded once the injected fault widens the value gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..exceptions import DatasetError
from ..sensors.array import SensorArray
from ..sensors.light import LightSensor
from ..sensors.signal import CompositeSignal, DiurnalSignal, RandomWalkSignal
from .dataset import Dataset

#: Calibration bias per sensor, kilolumen (paper sensor labels E1..E5).
DEFAULT_BIASES: Tuple[float, ...] = (-0.05, 0.10, -0.45, 0.15, 0.20)


@dataclass(frozen=True)
class UC1Config:
    """Parameters of the UC-1 generator.

    The defaults reproduce the paper's recording: 10'000 rounds at
    8 samples/s from 5 sensors reading 17–20 kilolumen.
    """

    n_rounds: int = 10_000
    sample_rate_hz: float = 8.0
    base_level: float = 18.3
    diurnal_amplitude: float = 0.8
    diurnal_period: float = 5000.0
    cloud_step_std: float = 0.02
    cloud_step_interval: float = 5.0
    cloud_clamp: float = 0.4
    biases: Tuple[float, ...] = DEFAULT_BIASES
    noise_std: float = 0.1
    seed: int = 1202

    @property
    def n_sensors(self) -> int:
        return len(self.biases)

    @property
    def duration_seconds(self) -> float:
        return self.n_rounds / self.sample_rate_hz

    def module_names(self) -> Tuple[str, ...]:
        return tuple(f"E{i + 1}" for i in range(self.n_sensors))


def build_uc1_array(config: UC1Config = UC1Config()) -> SensorArray:
    """The UC-1 sensor array (5 LUX1000-like sensors on one signal)."""
    if config.n_sensors < 2:
        raise DatasetError("UC-1 needs at least 2 sensors")
    truth = CompositeSignal(
        [
            DiurnalSignal(
                base=config.base_level,
                amplitude=config.diurnal_amplitude,
                period=config.diurnal_period,
            ),
            RandomWalkSignal(
                step_std=config.cloud_step_std,
                step_interval=config.cloud_step_interval,
                seed=config.seed,
                clamp=(-config.cloud_clamp, config.cloud_clamp),
            ),
        ]
    )
    sensors = [
        LightSensor(
            name=name,
            signal=truth,
            bias=bias,
            noise_std=config.noise_std,
            seed=config.seed + 101 * (i + 1),
        )
        for i, (name, bias) in enumerate(zip(config.module_names(), config.biases))
    ]
    return SensorArray(sensors, name="uc1-light")


def generate_uc1_dataset(config: UC1Config = UC1Config()) -> Dataset:
    """Generate the UC-1 reference dataset (rounds × sensors, kilolumen)."""
    array = build_uc1_array(config)
    times = np.arange(config.n_rounds) / config.sample_rate_hz
    matrix = array.sample_matrix(times)
    return Dataset(
        name="uc1-light",
        modules=list(config.module_names()),
        matrix=matrix,
        times=times,
        metadata={
            "use_case": "UC-1 smart building light sensors",
            "unit": "kilolumen",
            "sample_rate_hz": config.sample_rate_hz,
            "seed": config.seed,
            "biases": list(config.biases),
            "noise_std": config.noise_std,
        },
    )
