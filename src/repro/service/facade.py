"""The unified client facade: one API for voters, shards and gateways.

:func:`connect` is the front door of the client stack.  It dials any
protocol-speaking endpoint — a plain
:class:`~repro.service.server.VoterServer`, a cluster
:class:`~repro.cluster.backend.ShardServer`, a
:class:`~repro.cluster.gateway.ClusterGateway` or the async
:class:`~repro.ingest.AsyncIngestServer` tier — negotiates the protocol
version and wire framing, and returns a :class:`FusionClient` exposing
one consistent operation surface (``vote``, ``vote_batch``,
``history``, ``stats``, ``metrics``, ``configure``).

The low-level :class:`~repro.service.client.VoterClient` remains
available for callers that need per-operation control (``submit`` /
``close_round`` incremental rounds, cluster introspection); it is
reachable as :attr:`FusionClient.raw`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from .client import VoterClient
from .protocol import ProtocolError

Address = Union[str, Tuple[str, int]]


def _split_address(addr: Address) -> Tuple[str, int]:
    """Accept ``(host, port)`` tuples or ``"host:port"`` strings."""
    if isinstance(addr, tuple):
        host, port = addr
        return str(host), int(port)
    if not isinstance(addr, str) or ":" not in addr:
        raise ProtocolError(
            f"address must be (host, port) or 'host:port', not {addr!r}"
        )
    host, _, port_text = addr.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise ProtocolError(f"invalid port in address {addr!r}")
    return host, port


class FusionClient:
    """A negotiated connection to any fusion service endpoint.

    Construct via :func:`connect`, which performs the version/framing
    handshake; the resulting client exposes the common operation set
    regardless of whether the peer is a single voter, a shard, a
    cluster gateway or an async ingest tier.

    Attributes:
        raw: the underlying :class:`~repro.service.client.VoterClient`
            for low-level or endpoint-specific operations.
        version: protocol version agreed in the handshake (2 or 3).
        transport: ``"binary"`` when v3 frames were negotiated,
            ``"json"`` otherwise.
    """

    def __init__(self, raw: VoterClient, version: int):
        self.raw = raw
        self.version = version

    @property
    def transport(self) -> str:
        """The negotiated wire framing (``"binary"`` or ``"json"``)."""
        return "binary" if self.raw._binary else "json"

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection."""
        self.raw.close()

    def __enter__(self) -> "FusionClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"FusionClient({self.raw.host}:{self.raw.port}, "
            f"v{self.version}/{self.transport})"
        )

    # -- operations -------------------------------------------------------

    def ping(self) -> bool:
        """Liveness probe; ``True`` when the peer answers."""
        return self.raw.ping()

    def vote(
        self,
        round_number: int,
        values: Dict[str, Optional[float]],
        series: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Vote one complete round; returns the result payload."""
        return self.raw.vote(round_number, values, series=series)

    def vote_batch(self, batches: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Vote many rounds across many series in one round-trip."""
        return self.raw.vote_batch(batches)

    def history(self, series: Optional[str] = None) -> Dict[str, float]:
        """Per-module history records for a series."""
        return self.raw.history(series)

    def stats(self, series: Optional[str] = None) -> Dict[str, Any]:
        """Engine statistics for a series."""
        return self.raw.stats(series)

    def metrics(self) -> str:
        """The peer's metrics in Prometheus text exposition format."""
        return self.raw.metrics()

    def configure(self, spec: Dict[str, Any]) -> str:
        """Replace the peer's voting scheme; returns the new name."""
        return self.raw.configure(spec)


def connect(
    addr: Address,
    *,
    transport: str = "auto",
    timeout: float = 5.0,
    retries: int = 0,
) -> FusionClient:
    """Dial a fusion endpoint and negotiate a session.

    Args:
        addr: ``(host, port)`` tuple or ``"host:port"`` string.
        transport: ``"auto"`` (upgrade to v3 binary framing when the
            peer supports it, v2 JSON otherwise), ``"json"`` (pin v2
            JSON lines) or ``"binary"`` (require v3 frames; raises
            against a v2-only peer).
        timeout: socket timeout in seconds.
        retries: transparent replays of idempotent requests after
            transport failures (see :class:`VoterClient`).

    Returns:
        a connected, handshaken :class:`FusionClient`.
    """
    host, port = _split_address(addr)
    raw = VoterClient(host, port, timeout=timeout, retries=retries)
    raw.connect()
    try:
        version = raw.negotiate(transport)
    except BaseException:
        raw.close()
        raise
    return FusionClient(raw, version)
