"""Blocking client for the voter service."""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

from ..exceptions import ReproError
from .protocol import MAX_LINE_BYTES, ProtocolError, decode_message, encode_message


class ServiceError(ReproError):
    """The service answered a request with ``ok: false``."""


class VoterClient:
    """A synchronous connection to a :class:`~repro.service.server.VoterServer`.

    Use as a context manager::

        with VoterClient(host, port) as client:
            result = client.vote(0, {"E1": 18.0, "E2": 18.1})
    """

    def __init__(self, host: str, port: int, timeout: float = 5.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._buffer = b""

    # -- lifecycle --------------------------------------------------------

    def connect(self) -> "VoterClient":
        if self._sock is not None:
            return self
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buffer = b""

    def __enter__(self) -> "VoterClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire -------------------------------------------------------------

    def _read_line(self) -> bytes:
        assert self._sock is not None
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ProtocolError("server line exceeds protocol maximum")
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ProtocolError("server closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and return the (ok) response payload.

        Raises:
            ServiceError: when the service reports a handled error.
            ProtocolError: on wire-level problems.
        """
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        self._sock.sendall(encode_message(message))
        response = decode_message(self._read_line())
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown service error"))
        return response

    # -- operations ---------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def spec(self) -> Dict[str, Any]:
        return self.request({"op": "spec"})["spec"]

    def vote(self, round_number: int, values: Dict[str, Optional[float]]):
        """Vote a complete round; returns the result payload."""
        return self.request(
            {"op": "vote", "round": round_number, "values": values}
        )["result"]

    def submit(self, round_number: int, module: str, value: Optional[float]):
        """Submit one module's reading; returns the submit payload.

        When the submission completes the roster, the service votes the
        round immediately and the payload contains ``result``.
        """
        return self.request(
            {"op": "submit", "round": round_number, "module": module,
             "value": value}
        )

    def close_round(self, round_number: int):
        """Vote a partially-submitted round now (deadline expiry)."""
        return self.request({"op": "close_round", "round": round_number})["result"]

    def history(self) -> Dict[str, float]:
        return self.request({"op": "history"})["records"]

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    def metrics(self) -> str:
        """The service's metrics in Prometheus text exposition format."""
        return self.request({"op": "metrics"})["metrics"]

    def reset(self) -> bool:
        return bool(self.request({"op": "reset"}).get("reset"))

    def configure(self, spec: Dict[str, Any]) -> str:
        """Replace the service's voting scheme; returns the new name."""
        response = self.request({"op": "configure", "spec": spec})
        return response["algorithm_name"]
