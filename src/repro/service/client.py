"""Blocking client for the voter service.

The client can opt into transparent reconnect-and-replay for transient
transport failures (``retries=``/``backoff=``): a dropped connection
mid-request is retried for *idempotent* operations only, reusing the
cluster layer's :class:`~repro.cluster.retry.RetryPolicy` backoff
schedule.  Mutating operations without replay protection (``submit``,
``close_round``, ``configure``) are never retried.  ``vote`` and
``vote_batch`` sit in between: cluster shard backends and gateways
cache and replay the original result, so the client replays them only
after a ``hello`` handshake in which the peer advertised
``replays_votes`` — against a plain strict
:class:`~repro.service.server.VoterServer` a replayed ``vote`` would
answer ``already voted``, converting a succeeded write into a spurious
error.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional

from ..cluster.retry import RetryPolicy
from ..exceptions import ReproError
from .protocol import (
    FRAME_HEADER,
    FRAME_MAGIC,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosedError,
    ProtocolError,
    decode_frame_header,
    decode_frame_payload,
    decode_message,
    encode_frame,
    encode_message,
)


class ServiceError(ReproError):
    """The service answered a request with ``ok: false``.

    Attributes:
        code: machine-readable error code from the envelope (one of the
            :class:`~repro.service.protocol.ErrorCode` values as a
            string), or ``None`` when the peer predates protocol v3.
    """

    def __init__(self, message: str, code: Optional[str] = None):
        super().__init__(message)
        self.code = code


#: Operations safe to replay after a transport failure against *any*
#: server: reads, the handshake, and ``sync_history`` (an overwrite-
#: style seed — re-applying the same snapshot is a no-op).
IDEMPOTENT_OPS = frozenset(
    {
        "ping",
        "hello",
        "spec",
        "stats",
        "metrics",
        "history",
        "route",
        "cluster_stats",
        "sync_history",
    }
)

#: Whole-round writes that are deduplicated server-side by round number
#: — but only by servers with a replay cache.  Replayed only when the
#: peer advertised ``replays_votes`` in the ``hello`` handshake.
REPLAY_CACHED_OPS = frozenset({"vote", "vote_batch"})


class VoterClient:
    """A synchronous connection to a :class:`~repro.service.server.VoterServer`.

    This is the low-level, operation-per-method layer.  Most callers
    want the :class:`~repro.service.facade.FusionClient` facade instead
    (``repro.connect(addr)``), which wraps a ``VoterClient`` and
    auto-negotiates the protocol version and wire framing.

    Use as a context manager::

        with VoterClient(host, port) as client:
            result = client.vote(0, {"E1": 18.0, "E2": 18.1})

    Args:
        host: server address.
        port: server port.
        timeout: socket timeout in seconds.
        retries: how many times an idempotent request may be replayed
            after a transport failure (0 = the historical fail-fast
            behaviour).
        backoff: backoff schedule between replays; defaults to a
            50 ms-base exponential policy capped by ``retries``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 5.0,
        retries: int = 0,
        backoff: Optional[RetryPolicy] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff if backoff is not None else RetryPolicy(
            max_retries=max(retries, 0)
        )
        self._sock: Optional[socket.socket] = None
        self._buffer = b""
        self._peer_replays_votes = False
        #: Send requests as protocol-v3 binary frames?  Flipped by
        #: :meth:`negotiate` once the peer has advertised the
        #: ``binary_framing`` capability; persists across reconnects
        #: (the peer that advertised it is the peer we reconnect to).
        self._binary = False
        self._peer_binary_framing = False
        self._peer_max_version = 0

    # -- lifecycle --------------------------------------------------------

    def connect(self) -> "VoterClient":
        if self._sock is not None:
            return self
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buffer = b""

    def __enter__(self) -> "VoterClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire -------------------------------------------------------------

    def _read_line(self) -> bytes:
        assert self._sock is not None
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ProtocolError("server line exceeds protocol maximum")
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionClosedError("server closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    def _read_exact(self, count: int) -> bytes:
        assert self._sock is not None
        while len(self._buffer) < count:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionClosedError("server closed the connection")
            self._buffer += chunk
        data, self._buffer = self._buffer[:count], self._buffer[count:]
        return data

    def _read_response(self) -> Dict[str, Any]:
        """Read one response, in whichever framing the server used.

        A v3 server mirrors the request framing, but detecting by first
        byte keeps the client correct against any compliant peer.
        """
        first = self._read_exact(1)
        if first[0] == FRAME_MAGIC:
            header = first + self._read_exact(FRAME_HEADER.size - 1)
            length = decode_frame_header(header)
            return decode_frame_payload(self._read_exact(length))
        self._buffer = first + self._buffer
        return decode_message(self._read_line())

    def _exchange(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        encoded = (
            encode_frame(message) if self._binary else encode_message(message)
        )
        self._sock.sendall(encoded)
        return self._read_response()

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and return the (ok) response payload.

        Raises:
            ServiceError: when the service reports a handled error.
            ProtocolError: on wire-level problems.
        """
        attempt = 0
        op = message.get("op")
        replayable = self.retries > 0 and (
            op in IDEMPOTENT_OPS
            or (op in REPLAY_CACHED_OPS and self._peer_replays_votes)
        )
        while True:
            try:
                response = self._exchange(message)
            except (ConnectionClosedError, OSError):
                # Transport-level failure: the request may never have
                # reached the server.  Reconnect and replay, idempotent
                # operations only.
                self.close()
                if not replayable or attempt >= self.retries:
                    raise
                time.sleep(self.backoff.delay(attempt))
                attempt += 1
                continue
            if not response.get("ok"):
                raise ServiceError(
                    response.get("error", "unknown service error"),
                    code=response.get("code"),
                )
            return response

    # -- operations ---------------------------------------------------------

    @staticmethod
    def _with_series(message: Dict[str, Any], series: Optional[str]):
        if series is not None:
            message["series"] = series
        return message

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def hello(self, version: int = PROTOCOL_VERSION) -> int:
        """Version handshake; returns the server's protocol version.

        Also learns the peer's capabilities: a server advertising
        ``replays_votes`` unlocks transparent replay of ``vote`` /
        ``vote_batch`` after a transport failure (with ``retries>0``).
        """
        response = self.request({"op": "hello", "version": version})
        self._peer_replays_votes = bool(response.get("replays_votes", False))
        self._peer_binary_framing = bool(response.get("binary_framing", False))
        self._peer_max_version = int(response.get("max_version", version))
        return int(response["version"])

    def negotiate(self, transport: str = "auto") -> int:
        """Handshake and pick a wire framing; returns the agreed version.

        Args:
            transport: ``"auto"`` upgrades to v3 binary framing when the
                peer advertises the ``binary_framing`` capability and
                falls back to v2 JSON lines otherwise; ``"json"`` pins
                v2 JSON lines; ``"binary"`` requires v3 framing and
                raises :class:`~repro.service.protocol.ProtocolError`
                against a peer that cannot speak it.
        """
        if transport not in ("auto", "json", "binary"):
            raise ValueError(
                f"transport must be 'auto', 'json' or 'binary', not {transport!r}"
            )
        if transport == "json":
            self._binary = False
            return self.hello(2)
        try:
            version = self.hello(PROTOCOL_VERSION)
        except ServiceError:
            if transport == "binary":
                raise
            # Peer predates v3; the connection survives a rejected
            # handshake, so re-greet at the v2 floor.
            self._binary = False
            return self.hello(2)
        if self._peer_binary_framing and version >= 3:
            self._binary = True
        elif transport == "binary":
            raise ProtocolError(
                "peer does not advertise the binary_framing capability"
            )
        return version

    def spec(self) -> Dict[str, Any]:
        return self.request({"op": "spec"})["spec"]

    def vote(
        self,
        round_number: int,
        values: Dict[str, Optional[float]],
        series: Optional[str] = None,
    ):
        """Vote a complete round; returns the result payload."""
        return self.request(
            self._with_series(
                {"op": "vote", "round": round_number, "values": values}, series
            )
        )["result"]

    def vote_batch(self, batches: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Vote many rounds across many series in one round-trip.

        Each batch is ``{"series", "rounds", "modules", "rows"}``; the
        response is one ``{"series", "results"}`` entry per batch with
        minimal per-round payloads (``round``/``value``/``status``).
        """
        return self.request({"op": "vote_batch", "batches": batches})["results"]

    def submit(
        self,
        round_number: int,
        module: str,
        value: Optional[float],
        series: Optional[str] = None,
    ):
        """Submit one module's reading; returns the submit payload.

        When the submission completes the roster, the service votes the
        round immediately and the payload contains ``result``.
        """
        return self.request(
            self._with_series(
                {"op": "submit", "round": round_number, "module": module,
                 "value": value},
                series,
            )
        )

    def close_round(self, round_number: int, series: Optional[str] = None):
        """Vote a partially-submitted round now (deadline expiry)."""
        return self.request(
            self._with_series({"op": "close_round", "round": round_number}, series)
        )["result"]

    def history(self, series: Optional[str] = None) -> Dict[str, float]:
        return self.request(
            self._with_series({"op": "history"}, series)
        )["records"]

    def stats(self, series: Optional[str] = None) -> Dict[str, Any]:
        return self.request(self._with_series({"op": "stats"}, series))

    def metrics(self) -> str:
        """The service's metrics in Prometheus text exposition format."""
        return self.request({"op": "metrics"})["metrics"]

    def reset(self, series: Optional[str] = None) -> bool:
        return bool(
            self.request(self._with_series({"op": "reset"}, series)).get("reset")
        )

    def configure(self, spec: Dict[str, Any]) -> str:
        """Replace the service's voting scheme; returns the new name."""
        response = self.request({"op": "configure", "spec": spec})
        return response["algorithm_name"]

    # -- cluster operations -------------------------------------------------

    def route(self, series: str) -> Dict[str, Any]:
        """(Gateway) the replica set currently responsible for a series."""
        return self.request({"op": "route", "series": series})

    def cluster_stats(self) -> Dict[str, Any]:
        """(Gateway) ring membership, backend liveness and counters."""
        return self.request({"op": "cluster_stats"})
