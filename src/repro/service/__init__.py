"""Voter service prototype.

The paper's future work (§8) plans to "field test a voter service
prototype with a variety of compute-power-restricted setups": an edge
node runs a voter described by a VDX document, and clients — sensor
gateways, analytics jobs — talk to it over the network instead of
linking the voting code.

This package is that prototype: a threaded TCP server speaking a
dual-framed protocol — line-delimited JSON (v2) and length-prefixed
binary frames (v3), see :mod:`repro.service.protocol` — backed by a
:class:`~repro.fusion.engine.FusionEngine`, plus a blocking client.
The protocol supports whole-round voting, incremental per-module
submission with explicit round close, history inspection, and service
statistics.  :func:`connect` returns the unified
:class:`FusionClient` facade, auto-negotiating version and framing.
"""

from .protocol import (
    ErrorCode,
    ProtocolError,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
)
from .server import VoterServer
from .client import ServiceError, VoterClient
from .facade import FusionClient, connect

__all__ = [
    "ErrorCode",
    "ProtocolError",
    "ServiceError",
    "decode_frame",
    "decode_message",
    "encode_frame",
    "encode_message",
    "VoterServer",
    "VoterClient",
    "FusionClient",
    "connect",
]
