"""Voter service prototype.

The paper's future work (§8) plans to "field test a voter service
prototype with a variety of compute-power-restricted setups": an edge
node runs a voter described by a VDX document, and clients — sensor
gateways, analytics jobs — talk to it over the network instead of
linking the voting code.

This package is that prototype: a threaded TCP server speaking a
line-delimited JSON protocol (:mod:`repro.service.protocol`), backed by
a :class:`~repro.fusion.engine.FusionEngine`, plus a blocking client.
The protocol supports whole-round voting, incremental per-module
submission with explicit round close, history inspection, and service
statistics.
"""

from .protocol import ProtocolError, decode_message, encode_message
from .server import VoterServer
from .client import VoterClient

__all__ = [
    "ProtocolError",
    "decode_message",
    "encode_message",
    "VoterServer",
    "VoterClient",
]
