"""The voter service: a threaded TCP server around a fusion engine.

One server hosts one voting scheme (a VDX document).  Concurrent client
connections are served by threads; all engine access is serialised by a
lock, so rounds are voted in arrival order regardless of which
connection closes them.
"""

from __future__ import annotations

import math
import socket
import socketserver
import threading
import time
from typing import Any, Dict, Optional

from ..exceptions import ReproError
from ..fusion.engine import FusionEngine, FusionResult
from ..obs import MetricsRegistry, ServiceInstruments, get_default_registry
from ..types import Round
from ..vdx.factory import build_engine
from ..vdx.spec import VotingSpec
from .protocol import (
    FRAME_HEADER,
    FRAME_MAGIC,
    MAX_LINE_BYTES,
    OPERATIONS,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    ErrorCode,
    ProtocolError,
    VersionMismatchError,
    decode_frame_header,
    decode_frame_payload,
    decode_message,
    encode_frame,
    encode_message,
    error_response_for,
    ok_response,
    validate_request,
)


def _numeric(module: Any, value: Any) -> Optional[float]:
    """Coerce one submitted value to a finite float (or None).

    Raises ProtocolError instead of letting ValueError/TypeError escape
    and kill the connection handler; also rejects non-finite floats,
    which the JSON encoder (``allow_nan=False``) could not serialise
    back to the client anyway.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        raise ProtocolError(
            f"value for module {module!r} must be numeric or null",
            code=ErrorCode.INVALID_VALUE,
        )
    try:
        result = float(value)
    except (TypeError, ValueError):
        raise ProtocolError(
            f"value for module {module!r} must be numeric or null",
            code=ErrorCode.INVALID_VALUE,
        )
    if not math.isfinite(result):
        raise ProtocolError(
            f"value for module {module!r} must be finite",
            code=ErrorCode.INVALID_VALUE,
        )
    return result


def _result_payload(result: FusionResult) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "round": result.round_number,
        "value": result.value,
        "status": result.status,
        "excluded": list(result.excluded),
    }
    if result.outcome is not None:
        payload["eliminated"] = list(result.outcome.eliminated)
        payload["used_bootstrap"] = result.outcome.used_bootstrap
        payload["weights"] = dict(result.outcome.weights)
    return payload


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read messages (JSON lines *or* binary frames),
    dispatch, answer each in the framing it arrived in."""

    #: Framing of the message currently being read; responses (error
    #: envelopes included) mirror it.
    _binary = False

    def _read_request(self):
        """Read one message (None at EOF), detecting its framing."""
        while True:
            first = self.rfile.read(1)
            if not first:
                return None
            if first[0] == FRAME_MAGIC:
                self._binary = True
                header = first + self.rfile.read(FRAME_HEADER.size - 1)
                length = decode_frame_header(header)  # may raise ProtocolError
                payload = self.rfile.read(length)
                if len(payload) < length:
                    raise ProtocolError(
                        "connection closed mid-frame",
                        code=ErrorCode.MALFORMED_FRAME,
                    )
                return decode_frame_payload(payload)
            self._binary = False
            line = first + self.rfile.readline(MAX_LINE_BYTES + 1)
            stripped = line.strip()
            if stripped:
                return decode_message(stripped)

    def handle(self) -> None:
        while True:
            fatal = False
            try:
                try:
                    request = self._read_request()
                    if request is None:
                        return
                    service = self.server.service  # type: ignore[attr-defined]
                    response = service.dispatch(request)
                except ProtocolError as exc:
                    # A framing-level failure poisons the stream: after a
                    # bad header or an oversized frame the next byte is
                    # not a message boundary, so answer and hang up.
                    fatal = exc.code in (
                        ErrorCode.MALFORMED_FRAME, ErrorCode.FRAME_TOO_LARGE
                    )
                    response = error_response_for(exc)
                except ReproError as exc:
                    response = error_response_for(exc)
                except (TypeError, ValueError) as exc:
                    # Last-resort guard: a malformed payload must produce
                    # an error response, never a dead connection.
                    response = error_response_for(
                        ProtocolError(f"invalid request: {exc}")
                    )
            except (ConnectionResetError, BrokenPipeError):
                return
            try:
                encoded = (
                    encode_frame(response)
                    if self._binary
                    else encode_message(response)
                )
                self.wfile.write(encoded)
            except (BrokenPipeError, ConnectionResetError):
                return
            if fatal:
                return


class _ThreadingServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._open_requests: set = set()
        self._open_requests_lock = threading.Lock()

    def process_request(self, request, client_address) -> None:
        with self._open_requests_lock:
            self._open_requests.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request) -> None:
        with self._open_requests_lock:
            self._open_requests.discard(request)
        super().shutdown_request(request)

    def close_all_connections(self) -> None:
        """Sever established connections (abrupt-death fault injection).

        A graceful :meth:`VoterServer.stop` leaves open connections to
        drain naturally; killing a thread-mode shard must instead look
        like a process death, where every peer sees its socket die.
        """
        with self._open_requests_lock:
            requests = list(self._open_requests)
        for request in requests:
            try:
                request.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                request.close()
            except OSError:
                pass


class VoterServer:
    """A VDX-configured voter reachable over TCP.

    Args:
        spec: the voting scheme this service hosts.
        host: bind address (default loopback).
        port: bind port; 0 picks a free port (see :attr:`address`).
        history_store: optional persistent record backend.
        registry: metrics registry for the service *and* its engine
            (default: the process-global registry from :mod:`repro.obs`).

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    """

    #: Advertised in the ``hello`` handshake: does this server answer a
    #: re-sent ``vote`` with the original result (replay cache) instead
    #: of an ``already voted`` error?  The plain single-engine server is
    #: strict; shard/cluster servers override this.
    _replays_votes = False

    def __init__(
        self,
        spec: VotingSpec,
        host: str = "127.0.0.1",
        port: int = 0,
        history_store=None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.spec = spec
        self._history_store = history_store
        self.registry = registry if registry is not None else get_default_registry()
        self._obs = ServiceInstruments(self.registry, OPERATIONS)
        self.engine: FusionEngine = build_engine(
            spec, history_store=history_store, registry=self.registry
        )
        self._lock = threading.Lock()
        self._pending: Dict[int, Dict[str, Optional[float]]] = {}
        self._voted = set()
        self._last_result: Optional[FusionResult] = None
        self.requests_served = 0
        self._tcp: Optional[_ThreadingServer] = _ThreadingServer(
            (host, port), _Handler
        )
        self._tcp.service = self  # type: ignore[attr-defined]
        self._address = self._tcp.server_address
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle --------------------------------------------------------

    @property
    def address(self):
        """(host, port) the server is (or was) bound to."""
        return self._address

    def start(self) -> "VoterServer":
        if self._tcp is None:
            raise ReproError("server already stopped")
        if self._thread is not None:
            raise ReproError("server already started")
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down and release the socket (idempotent).

        Safe to call whether or not :meth:`start` ever ran — ``__exit__``
        after a failed start must still close the bound socket — and
        safe to call repeatedly: the first call nulls out ``_tcp``, so a
        second one can never touch a closed socket.
        """
        thread, self._thread = self._thread, None
        tcp, self._tcp = self._tcp, None
        if tcp is not None:
            if thread is not None:
                tcp.shutdown()
            tcp.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "VoterServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request dispatch ---------------------------------------------------

    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Handle one validated request (thread-safe)."""
        op = validate_request(request)
        obs = self._obs
        start = time.perf_counter() if obs.enabled else 0.0
        try:
            with self._lock:
                self.requests_served += 1
                handler = getattr(self, f"_op_{op}", None)
                if handler is None:
                    # Cluster-only operations against a plain server must
                    # answer with an error, not kill the handler thread.
                    raise ProtocolError(
                        f"operation {op!r} is not supported by this server",
                        code=ErrorCode.UNSUPPORTED_OP,
                    )
                return handler(request)
        except Exception:
            obs.errors[op].inc()
            raise
        finally:
            obs.requests[op].inc()
            if obs.enabled:
                obs.request_seconds[op].observe(time.perf_counter() - start)

    # -- operations ---------------------------------------------------------

    def _op_ping(self, request) -> Dict[str, Any]:
        return ok_response(pong=True)

    def _op_hello(self, request) -> Dict[str, Any]:
        """Version handshake: reject mismatched peers with a clear error.

        Every version in :data:`SUPPORTED_VERSIONS` is accepted and
        echoed back, so a v2-era peer keeps its familiar reply while a
        v3 peer additionally learns the capabilities it may use
        (``binary_framing``, ``replays_votes``, ``max_version``).
        """
        version = request["version"]
        if version not in SUPPORTED_VERSIONS:
            raise VersionMismatchError(
                f"protocol version mismatch: peer speaks {version}, "
                f"this server speaks {PROTOCOL_VERSION}"
            )
        return ok_response(
            version=version,
            server=type(self).__name__,
            replays_votes=self._replays_votes,
            binary_framing=True,
            max_version=PROTOCOL_VERSION,
        )

    def _op_spec(self, request) -> Dict[str, Any]:
        return ok_response(spec=self.spec.to_dict())

    def _vote_round(self, number: int, values: Dict[str, Optional[float]]):
        if number in self._voted:
            raise ProtocolError(
                f"round {number} was already voted",
                code=ErrorCode.ALREADY_VOTED,
            )
        self._voted.add(number)
        voting_round = Round.from_mapping(number, values)
        result = self.engine.process(voting_round)
        self._last_result = result
        return result

    def _op_vote(self, request) -> Dict[str, Any]:
        values = {
            str(m): _numeric(m, v) for m, v in request["values"].items()
        }
        result = self._vote_round(request["round"], values)
        return ok_response(result=_result_payload(result))

    def _op_submit(self, request) -> Dict[str, Any]:
        number = request["round"]
        if number in self._voted:
            raise ProtocolError(
                f"round {number} was already voted",
                code=ErrorCode.ALREADY_VOTED,
            )
        value = _numeric(request["module"], request["value"])
        bucket = self._pending.setdefault(number, {})
        bucket[request["module"]] = value
        roster = self.engine.roster
        complete = bool(roster) and set(bucket) >= set(roster)
        if complete:
            result = self._vote_round(number, self._pending.pop(number))
            return ok_response(
                accepted=True, voted=True, result=_result_payload(result)
            )
        return ok_response(accepted=True, voted=False, pending=len(bucket))

    def _op_close_round(self, request) -> Dict[str, Any]:
        number = request["round"]
        bucket = self._pending.pop(number, None)
        if bucket is None:
            raise ProtocolError(f"no pending submissions for round {number}")
        result = self._vote_round(number, bucket)
        return ok_response(result=_result_payload(result))

    def _op_history(self, request) -> Dict[str, Any]:
        history = getattr(self.engine.voter, "history", None)
        records = history.snapshot() if history is not None else {}
        return ok_response(records=records)

    def _op_stats(self, request) -> Dict[str, Any]:
        processed = self.engine.rounds_processed
        degraded = self.engine.rounds_degraded
        snapshot = {
            "engine": {
                "rounds_processed": processed,
                "rounds_degraded": degraded,
                "availability": (
                    (processed - degraded) / processed if processed else 0.0
                ),
                "roster_size": len(self.engine.roster),
                "algorithm": self.spec.algorithm_name,
            },
            "service": {
                "requests": {
                    op: child.value
                    for op, child in self._obs.requests.items()
                },
                "errors": {
                    op: child.value for op, child in self._obs.errors.items()
                },
            },
        }
        return ok_response(
            rounds_processed=processed,
            rounds_degraded=degraded,
            pending_rounds=sorted(self._pending),
            requests_served=self.requests_served,
            last_value=self._last_result.value if self._last_result else None,
            algorithm=self.spec.algorithm_name,
            snapshot=snapshot,
        )

    def _op_metrics(self, request) -> Dict[str, Any]:
        """Prometheus text exposition of the service's registry."""
        return ok_response(metrics=self.registry.render())

    def _op_obs(self, request) -> Dict[str, Any]:
        """Structured JSON snapshot of the service's registry.

        The machine-readable sibling of ``metrics``: the gateway's
        aggregation op and the dashboard consume this instead of
        re-parsing Prometheus text.
        """
        return ok_response(snapshot=self.registry.snapshot())

    def _op_reset(self, request) -> Dict[str, Any]:
        self.engine.reset()
        self._pending.clear()
        self._voted.clear()
        self._last_result = None
        return ok_response(reset=True)

    def _op_configure(self, request) -> Dict[str, Any]:
        """Hot-swap the voting scheme (the VDX promise made live).

        The new document is validated before anything changes; an
        invalid document leaves the running scheme untouched.  A swap
        discards all voting state — records earned under one scheme
        mean nothing under another — but keeps the history store
        attached so the new scheme persists its records too.
        """
        spec = VotingSpec.from_dict(request["spec"])
        self.spec = spec
        if self._history_store is not None:
            # Stale records from the old scheme must not leak into the
            # rebuilt engine via the store's load-on-attach.
            self._history_store.clear()
        self.engine = build_engine(
            spec, history_store=self._history_store, registry=self.registry
        )
        self._pending.clear()
        self._voted.clear()
        self._last_result = None
        return ok_response(configured=True, algorithm_name=spec.algorithm_name)
