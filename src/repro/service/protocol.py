"""Wire protocol for the voter service: JSON lines and binary frames.

Every request and response is one *message* (a dict with an ``op``
field on requests; ``ok`` plus either the operation's payload or an
``error`` string and machine-readable ``code`` on responses).  A
message travels in one of two framings, and every server speaks both
on the same port, per message:

* **v2 — JSON lines**: one JSON object on one line (UTF-8,
  ``\\n``-terminated).  The compatibility framing; any peer from the
  protocol-v2 era keeps working unchanged.
* **v3 — binary frames**: a fixed 8-byte header (magic, version,
  flags, payload length) followed by a compact type-tagged binary
  payload (``struct``-packed, stdlib-only).  Rows of float readings
  travel as packed IEEE-754 doubles — the serialization hot path of
  the micro-batched ``vote_batch`` traffic.  See ``docs/protocol.md``
  for the byte-by-byte layout.

Framing is detected from the first byte of each message (``0xF3``
opens a binary frame; anything else is a JSON line) and responses
mirror the framing of their request, so a connection may even mix
framings.  Clients discover the capability through the ``hello``
handshake (the reply advertises ``binary_framing``) and upgrade with
:meth:`~repro.service.client.VoterClient.negotiate`.

Operations:

====================  =====================================================
``ping``              liveness check; echoes ``{"ok": true, "pong": true}``
``spec``              the service's active VDX document
``vote``              vote a complete round: ``{"op": "vote", "round": 3,
                      "values": {"E1": 18.0, "E2": null}}``
``submit``            incremental submission of one module's reading:
                      ``{"op": "submit", "round": 3, "module": "E1",
                      "value": 18.0}``
``close_round``       vote whatever has been submitted for a round
``history``           current per-module history records
``stats``             rounds processed/degraded, last output, plus a
                      structured ``snapshot`` of engine/service metrics
``metrics``           Prometheus text exposition of the service's
                      metrics registry (see :mod:`repro.obs`)
``obs``               structured JSON ``snapshot()`` of the metrics
                      registry; on a gateway the reply also carries a
                      ``shards`` map aggregating every live backend's
                      snapshot (the dashboard/scrape aggregation op)
``reset``             reset voter history and engine state
``hello``             version handshake: ``{"op": "hello", "version": 3}``;
                      every version in :data:`SUPPORTED_VERSIONS` is
                      accepted and echoed back, a mismatched peer gets
                      a clear error instead of a decode failure deeper
                      in the exchange.  The reply advertises
                      capabilities (``replays_votes``,
                      ``binary_framing``, ``max_version``)
``vote_batch``        vote many rounds across many series in one
                      round-trip (the cluster micro-batching hot path):
                      ``{"op": "vote_batch", "batches": [{"series": "s",
                      "rounds": [0, 1], "modules": ["E1"],
                      "rows": [[18.0], [18.1]]}]}``
``route``             (gateway) replica set for a series key
``cluster_stats``     (gateway) ring membership, backend liveness and
                      per-shard counters
``sync_history``      (shard backend) install history records for one
                      series — the rebalance/failover seeding write;
                      optional ``updates`` (history update counter) and
                      ``watermark`` (highest voted round) version the
                      seed so a stale snapshot cannot rewind a shard
====================  =====================================================

Sharded servers accept an optional ``series`` string on ``vote``,
``submit``, ``close_round``, ``history``, ``stats`` and ``reset`` to
select one of their hosted series; the plain single-engine
:class:`~repro.service.server.VoterServer` ignores it.
"""

from __future__ import annotations

import enum
import json
import math
import struct
from typing import Any, Dict, List, Tuple

from ..exceptions import ReproError

#: Wire-protocol version.  Bumped to 2 when the cluster operations
#: (``hello``/``vote_batch``/``route``/``cluster_stats``/``sync_history``)
#: and the optional ``series`` field were added; bumped to 3 when the
#: binary framing and the structured error envelope (``code``) landed.
PROTOCOL_VERSION = 3

#: Versions this build can speak.  Protocol v2 (JSON lines, string-only
#: errors) stays fully supported so v2-era peers keep working; a
#: ``hello`` carrying any of these versions is accepted and echoed.
SUPPORTED_VERSIONS = (2, 3)

#: All operations the server understands.
OPERATIONS = (
    "ping",
    "spec",
    "vote",
    "submit",
    "close_round",
    "history",
    "stats",
    "metrics",
    "obs",
    "reset",
    "configure",
    "hello",
    "vote_batch",
    "route",
    "cluster_stats",
    "sync_history",
)

#: Cap on a single protocol line; longer lines are rejected (guards the
#: server against unbounded buffering from a misbehaving client).
MAX_LINE_BYTES = 1_048_576

#: Cap on a whole binary frame (header + payload).  Kept equal to the
#: line cap so a message rejected in one framing cannot sneak through
#: the other.
MAX_FRAME_BYTES = MAX_LINE_BYTES


class ErrorCode(str, enum.Enum):
    """Machine-readable error categories shared by every server tier.

    Each error response carries ``{"ok": false, "error": <message>,
    "code": <one of these>}``; the code is the stable contract
    (messages are for humans and may change between releases).  The
    same enum is used by the plain voter service, the shard backends,
    the cluster gateway and the async ingest tier, so clients can
    branch on a failure class without parsing prose.
    """

    #: Malformed request or wire-level violation.
    PROTOCOL = "protocol"
    #: ``hello`` carried a version outside :data:`SUPPORTED_VERSIONS`.
    VERSION_MISMATCH = "version_mismatch"
    #: A binary frame (or JSON line) exceeded the size cap.
    FRAME_TOO_LARGE = "frame_too_large"
    #: A binary frame failed to decode (bad magic/tag/truncation).
    MALFORMED_FRAME = "malformed_frame"
    #: A submitted value was non-numeric or non-finite.
    INVALID_VALUE = "invalid_value"
    #: The round was voted before and cannot be replayed.
    ALREADY_VOTED = "already_voted"
    #: The request named a series this server does not host.
    UNKNOWN_SERIES = "unknown_series"
    #: The operation exists but this server tier does not serve it.
    UNSUPPORTED_OP = "unsupported_op"
    #: No replica answered for the routed series.
    NO_REPLICA = "no_replica"
    #: The ingest tier shed this request (queues full).
    BACKPRESSURE = "backpressure"
    #: An invalid VDX document was submitted via ``configure``.
    SPEC = "spec"
    #: Anything else a handler raised.
    INTERNAL = "internal"


class ProtocolError(ReproError):
    """A message violated the wire protocol.

    Carries a machine-readable :class:`ErrorCode` (default
    :attr:`ErrorCode.PROTOCOL`) that the server echoes in the error
    envelope.
    """

    code: ErrorCode = ErrorCode.PROTOCOL

    def __init__(self, message: str, code: "ErrorCode | None" = None):
        super().__init__(message)
        if code is not None:
            self.code = code


class ConnectionClosedError(ProtocolError):
    """The peer closed the connection mid-exchange (retryable)."""


class VersionMismatchError(ProtocolError):
    """The peers speak different protocol versions."""

    code = ErrorCode.VERSION_MISMATCH


def _jsonable(value: Any) -> Any:
    """Make a value JSON-encodable (NaN becomes null)."""
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def encode_message(message: Dict[str, Any]) -> bytes:
    """Encode one protocol message as a JSON line."""
    text = json.dumps(
        {k: _jsonable(v) for k, v in message.items()}, allow_nan=False
    )
    data = text.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
    return data


def decode_message(line: bytes) -> Dict[str, Any]:
    """Decode one JSON line into a message dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON line: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


# -- protocol v3: binary framing ------------------------------------------
#
# Frame layout (all integers big-endian):
#
#   offset  size  field
#   0       1     magic  (0xF3 — never a valid first byte of a JSON line)
#   1       1     frame version (FRAME_VERSION = 1)
#   2       2     flags (reserved, must be 0)
#   4       4     payload length in bytes
#   8       n     payload: one type-tagged value (top level must be a map)
#
# Payload value encoding, first byte is a type tag:
#
#   0x00 null | 0x01 false | 0x02 true
#   0x03 int     : i64
#   0x04 float   : f64
#   0x05 str     : u32 byte length + UTF-8 bytes
#   0x06 list    : u32 count + that many values
#   0x07 map     : u32 count + (u16 key length + UTF-8 key, value) pairs
#   0x08 f64 row : u32 count + count packed f64 (NaN encodes a null cell)
#
# The f64-row tag is the hot path: a ``vote_batch`` row of readings is
# one struct pack/unpack instead of per-cell tags, and decodes back to
# the same ``float | None`` cells the JSON framing carries.

FRAME_MAGIC = 0xF3
FRAME_VERSION = 1
FRAME_HEADER = struct.Struct("!BBHI")

_TAG_NULL = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_LIST = 0x06
_TAG_MAP = 0x07
_TAG_F64ROW = 0x08
_TAG_I64ROW = 0x09
_TAG_F64MATRIX = 0x0A
_TAG_RECORDS = 0x0B

_I64_RANGE = (-(2 ** 63), 2 ** 63 - 1)

_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")

#: Maximum container nesting a frame may carry (guards the recursive
#: decoder against stack exhaustion from a hostile peer).
MAX_FRAME_DEPTH = 32


def _pack_matrix(value: Any, n: int) -> Optional[bytes]:
    """Pack a rectangular float/None matrix (the ``rows`` hot path).

    Returns None unless ``value`` is >= 2 equal-width rows (width >= 2)
    holding only floats and Nones — anything else falls back to the
    generic list encoding, so type fidelity is never lost.
    """
    if n < 2 or type(value[0]) not in (list, tuple):
        return None
    m = len(value[0])
    if m < 2 or not all(
        type(row) in (list, tuple) and len(row) == m for row in value
    ):
        return None
    flat = [cell for row in value for cell in row]
    if not all(cell is None or type(cell) is float for cell in flat):
        return None
    packed = struct.pack(
        f"!{n * m}d",
        *(float("nan") if cell is None else cell for cell in flat),
    )
    return b"\x0a" + _U32.pack(n) + _U32.pack(m) + packed


def _pack_records(value: Any, n: int, depth: int) -> Optional[bytes]:
    """Pack a list of same-keyed dicts column-wise, keys written once.

    ``vote_batch`` responses are long lists of small uniform records
    (``{"round", "value", "status"}`` per round); per-record key and
    tag overhead is what makes generic map encoding the hot spot.
    Uniform record lists are transposed into one value per column, so
    an all-int column (round numbers) or an all-float column (fused
    values) collapses into a single packed row and decoding rebuilds
    the dicts with ``dict(zip(...))`` instead of per-pair work.
    """
    if n < 2 or type(value[0]) is not dict:
        return None
    keys = tuple(value[0])
    if not keys or len(keys) > 255:
        return None
    for record in value:
        if type(record) is not dict or tuple(record) != keys:
            return None
    parts: List[bytes] = [b"\x0b", _U32.pack(n), bytes([len(keys)])]
    for key in keys:
        if not isinstance(key, str):
            return None
        data = key.encode("utf-8")
        parts.append(_U16.pack(len(data)) + data)
    for key in keys:
        _encode_value([record[key] for record in value], parts, depth + 1)
    return b"".join(parts)


def _encode_value(value: Any, parts: List[bytes], depth: int = 0) -> None:
    if depth > MAX_FRAME_DEPTH:
        raise ProtocolError(
            f"frame nesting exceeds {MAX_FRAME_DEPTH} levels",
            code=ErrorCode.MALFORMED_FRAME,
        )
    if value is None:
        parts.append(b"\x00")
    elif value is True:
        parts.append(b"\x02")
    elif value is False:
        parts.append(b"\x01")
    elif isinstance(value, int):
        parts.append(b"\x03" + _I64.pack(value))
    elif isinstance(value, float):
        if math.isnan(value):
            parts.append(b"\x00")  # mirror the JSON framing: NaN -> null
        else:
            parts.append(b"\x04" + _F64.pack(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        parts.append(b"\x05" + _U32.pack(len(data)) + data)
    elif isinstance(value, (list, tuple)):
        n = len(value)
        if n >= 2 and all(v is None or type(v) is float for v in value):
            packed = struct.pack(
                f"!{n}d", *(float("nan") if v is None else v for v in value)
            )
            parts.append(b"\x08" + _U32.pack(n) + packed)
        elif n >= 2 and all(
            type(v) is int and _I64_RANGE[0] <= v <= _I64_RANGE[1]
            for v in value
        ):
            parts.append(b"\x09" + _U32.pack(n) + struct.pack(f"!{n}q", *value))
        elif (matrix := _pack_matrix(value, n)) is not None:
            parts.append(matrix)
        elif (records := _pack_records(value, n, depth)) is not None:
            parts.append(records)
        else:
            parts.append(b"\x06" + _U32.pack(n))
            for item in value:
                _encode_value(item, parts, depth + 1)
    elif isinstance(value, dict):
        parts.append(b"\x07" + _U32.pack(len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise ProtocolError(
                    f"frame map keys must be strings, got {type(key).__name__}"
                )
            data = key.encode("utf-8")
            parts.append(_U16.pack(len(data)) + data)
            _encode_value(item, parts, depth + 1)
    else:
        raise ProtocolError(
            f"value of type {type(value).__name__} is not frame-encodable"
        )


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Encode one protocol message as a v3 binary frame."""
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a message object")
    parts: List[bytes] = []
    _encode_value(message, parts)
    payload = b"".join(parts)
    if FRAME_HEADER.size + len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame exceeds {MAX_FRAME_BYTES} bytes",
            code=ErrorCode.FRAME_TOO_LARGE,
        )
    return FRAME_HEADER.pack(FRAME_MAGIC, FRAME_VERSION, 0, len(payload)) + payload


def decode_frame_header(header: bytes) -> int:
    """Validate an 8-byte frame header; returns the payload length."""
    if len(header) < FRAME_HEADER.size:
        raise ProtocolError(
            "truncated frame header", code=ErrorCode.MALFORMED_FRAME
        )
    magic, version, flags, length = FRAME_HEADER.unpack(header[: FRAME_HEADER.size])
    if magic != FRAME_MAGIC:
        raise ProtocolError(
            f"bad frame magic 0x{magic:02x}", code=ErrorCode.MALFORMED_FRAME
        )
    if version != FRAME_VERSION:
        raise ProtocolError(
            f"unsupported frame version {version}",
            code=ErrorCode.MALFORMED_FRAME,
        )
    if flags != 0:
        raise ProtocolError(
            f"reserved frame flags 0x{flags:04x} set",
            code=ErrorCode.MALFORMED_FRAME,
        )
    if FRAME_HEADER.size + length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} payload bytes exceeds {MAX_FRAME_BYTES}",
            code=ErrorCode.FRAME_TOO_LARGE,
        )
    return length


def _decode_value(buf: memoryview, pos: int, depth: int) -> Tuple[Any, int]:
    if pos >= len(buf):
        raise ProtocolError("truncated frame value", code=ErrorCode.MALFORMED_FRAME)
    tag = buf[pos]
    pos += 1
    try:
        if tag == _TAG_NULL:
            return None, pos
        if tag == _TAG_FALSE:
            return False, pos
        if tag == _TAG_TRUE:
            return True, pos
        if tag == _TAG_INT:
            return _I64.unpack_from(buf, pos)[0], pos + 8
        if tag == _TAG_FLOAT:
            return _F64.unpack_from(buf, pos)[0], pos + 8
        if tag == _TAG_STR:
            (n,) = _U32.unpack_from(buf, pos)
            pos += 4
            if pos + n > len(buf):
                raise ProtocolError(
                    "truncated frame string", code=ErrorCode.MALFORMED_FRAME
                )
            return str(buf[pos:pos + n], "utf-8"), pos + n
        if tag == _TAG_F64ROW:
            (n,) = _U32.unpack_from(buf, pos)
            pos += 4
            if pos + 8 * n > len(buf):
                raise ProtocolError(
                    "truncated frame row", code=ErrorCode.MALFORMED_FRAME
                )
            cells = struct.unpack_from(f"!{n}d", buf, pos)
            return [None if v != v else v for v in cells], pos + 8 * n
        if tag == _TAG_I64ROW:
            (n,) = _U32.unpack_from(buf, pos)
            pos += 4
            if pos + 8 * n > len(buf):
                raise ProtocolError(
                    "truncated frame row", code=ErrorCode.MALFORMED_FRAME
                )
            return list(struct.unpack_from(f"!{n}q", buf, pos)), pos + 8 * n
        if tag == _TAG_RECORDS:
            if depth >= MAX_FRAME_DEPTH:
                raise ProtocolError(
                    "frame nesting exceeds the depth cap",
                    code=ErrorCode.MALFORMED_FRAME,
                )
            (n,) = _U32.unpack_from(buf, pos)
            width = buf[pos + 4]
            pos += 5
            keys = []
            for _ in range(width):
                (k,) = _U16.unpack_from(buf, pos)
                pos += 2
                if pos + k > len(buf):
                    raise ProtocolError(
                        "truncated frame key", code=ErrorCode.MALFORMED_FRAME
                    )
                keys.append(str(buf[pos:pos + k], "utf-8"))
                pos += k
            columns = []
            for _ in range(width):
                column, pos = _decode_value(buf, pos, depth + 1)
                if type(column) is not list or len(column) != n:
                    raise ProtocolError(
                        "malformed record column",
                        code=ErrorCode.MALFORMED_FRAME,
                    )
                columns.append(column)
            return [dict(zip(keys, cells)) for cells in zip(*columns)], pos
        if tag == _TAG_F64MATRIX:
            (n,) = _U32.unpack_from(buf, pos)
            (m,) = _U32.unpack_from(buf, pos + 4)
            pos += 8
            total = n * m
            if pos + 8 * total > len(buf):
                raise ProtocolError(
                    "truncated frame matrix", code=ErrorCode.MALFORMED_FRAME
                )
            cells = struct.unpack_from(f"!{total}d", buf, pos)
            if any(cell != cell for cell in cells):
                rows = [
                    [None if cell != cell else cell for cell in
                     cells[i * m:(i + 1) * m]]
                    for i in range(n)
                ]
            else:
                rows = [list(cells[i * m:(i + 1) * m]) for i in range(n)]
            return rows, pos + 8 * total
        if tag in (_TAG_LIST, _TAG_MAP):
            if depth >= MAX_FRAME_DEPTH:
                raise ProtocolError(
                    "frame nesting exceeds the depth cap",
                    code=ErrorCode.MALFORMED_FRAME,
                )
            (n,) = _U32.unpack_from(buf, pos)
            pos += 4
            if tag == _TAG_LIST:
                # Strings are the common non-packable item (status
                # columns, module names); decoding them inline skips a
                # recursive call per element.
                items = []
                append = items.append
                unpack_u32 = _U32.unpack_from
                for _ in range(n):
                    if buf[pos] == _TAG_STR:
                        (k,) = unpack_u32(buf, pos + 1)
                        pos += 5
                        if pos + k > len(buf):
                            raise ProtocolError(
                                "truncated frame string",
                                code=ErrorCode.MALFORMED_FRAME,
                            )
                        append(str(buf[pos:pos + k], "utf-8"))
                        pos += k
                    else:
                        item, pos = _decode_value(buf, pos, depth + 1)
                        append(item)
                return items, pos
            mapping: Dict[str, Any] = {}
            for _ in range(n):
                (k,) = _U16.unpack_from(buf, pos)
                pos += 2
                if pos + k > len(buf):
                    raise ProtocolError(
                        "truncated frame key", code=ErrorCode.MALFORMED_FRAME
                    )
                key = str(buf[pos:pos + k], "utf-8")
                pos += k
                mapping[key], pos = _decode_value(buf, pos, depth + 1)
            return mapping, pos
    except (struct.error, IndexError):
        raise ProtocolError(
            "truncated frame value", code=ErrorCode.MALFORMED_FRAME
        )
    except UnicodeDecodeError:
        raise ProtocolError(
            "frame string is not valid UTF-8", code=ErrorCode.MALFORMED_FRAME
        )
    raise ProtocolError(
        f"unknown frame tag 0x{tag:02x}", code=ErrorCode.MALFORMED_FRAME
    )


def decode_frame_payload(payload: bytes) -> Dict[str, Any]:
    """Decode a v3 frame payload into a message dict."""
    message, end = _decode_value(memoryview(payload), 0, 0)
    if end != len(payload):
        raise ProtocolError(
            f"{len(payload) - end} trailing bytes after the frame value",
            code=ErrorCode.MALFORMED_FRAME,
        )
    if not isinstance(message, dict):
        raise ProtocolError(
            "frame payload must be a message object",
            code=ErrorCode.MALFORMED_FRAME,
        )
    return message


def decode_frame(frame: bytes) -> Dict[str, Any]:
    """Decode one complete binary frame (header + payload)."""
    length = decode_frame_header(frame)
    payload = frame[FRAME_HEADER.size:]
    if len(payload) != length:
        raise ProtocolError(
            f"frame payload is {len(payload)} bytes, header declared {length}",
            code=ErrorCode.MALFORMED_FRAME,
        )
    return decode_frame_payload(payload)


def _check_value(value: Any, label: str) -> None:
    """Reject anything but null or a finite non-bool number.

    Booleans pass ``isinstance(value, int)`` and JSON ``Infinity`` /
    ``NaN`` literals parse as floats — both would survive a naive
    numeric check only to blow up (or be unserialisable,
    ``allow_nan=False``) deeper in the server.
    """
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            f"{label} must be numeric or null", code=ErrorCode.INVALID_VALUE
        )
    if not math.isfinite(value):
        raise ProtocolError(
            f"{label} must be finite", code=ErrorCode.INVALID_VALUE
        )


def _check_series(message: Dict[str, Any], op: str) -> None:
    """An optional ``series`` field must be a non-empty string."""
    series = message.get("series")
    if series is not None and (not isinstance(series, str) or not series):
        raise ProtocolError(f"{op} 'series' must be a non-empty string")


def _check_batches(batches: Any) -> None:
    """Shape-check a ``vote_batch`` payload.

    Row *values* are validated vectorially by the server (a single
    ``isfinite`` sweep over the assembled matrix), not per cell here —
    this is the micro-batching hot path.
    """
    if not isinstance(batches, list) or not batches:
        raise ProtocolError("vote_batch requires a non-empty 'batches' list")
    for batch in batches:
        if not isinstance(batch, dict):
            raise ProtocolError("each vote_batch batch must be an object")
        series = batch.get("series")
        if not isinstance(series, str) or not series:
            raise ProtocolError("each batch requires a non-empty string 'series'")
        rounds = batch.get("rounds")
        rows = batch.get("rows")
        modules = batch.get("modules")
        if not isinstance(rounds, list) or not rounds or not all(
            isinstance(r, int) and not isinstance(r, bool) for r in rounds
        ):
            raise ProtocolError(
                f"batch for series {series!r} requires a list of integer 'rounds'"
            )
        if not isinstance(modules, list) or not modules or not all(
            isinstance(m, str) for m in modules
        ):
            raise ProtocolError(
                f"batch for series {series!r} requires a list of string 'modules'"
            )
        if not isinstance(rows, list) or len(rows) != len(rounds):
            raise ProtocolError(
                f"batch for series {series!r} requires one row per round"
            )
        for row in rows:
            if not isinstance(row, list) or len(row) != len(modules):
                raise ProtocolError(
                    f"batch for series {series!r} has a row that does not "
                    f"match its module list"
                )


def validate_request(message: Dict[str, Any]) -> str:
    """Check a request's shape; returns the operation name."""
    op = message.get("op")
    if not isinstance(op, str) or op not in OPERATIONS:
        raise ProtocolError(f"unknown or missing op {op!r}")
    if op in ("vote", "submit", "close_round", "history", "stats", "reset"):
        _check_series(message, op)
    if op == "vote":
        if not isinstance(message.get("round"), int):
            raise ProtocolError("vote requires an integer 'round'")
        values = message.get("values")
        if not isinstance(values, dict) or not values:
            raise ProtocolError("vote requires a non-empty 'values' object")
        for module, value in values.items():
            _check_value(value, f"value for module {module!r}")
    elif op == "submit":
        if not isinstance(message.get("round"), int):
            raise ProtocolError("submit requires an integer 'round'")
        if not isinstance(message.get("module"), str):
            raise ProtocolError("submit requires a string 'module'")
        _check_value(message.get("value"), "submit 'value'")
    elif op == "close_round":
        if not isinstance(message.get("round"), int):
            raise ProtocolError("close_round requires an integer 'round'")
    elif op == "configure":
        if not isinstance(message.get("spec"), dict):
            raise ProtocolError("configure requires a 'spec' object")
    elif op == "hello":
        version = message.get("version")
        if not isinstance(version, int) or isinstance(version, bool):
            raise ProtocolError("hello requires an integer 'version'")
    elif op == "vote_batch":
        _check_batches(message.get("batches"))
    elif op == "route":
        series = message.get("series")
        if not isinstance(series, str) or not series:
            raise ProtocolError("route requires a non-empty string 'series'")
    elif op == "sync_history":
        series = message.get("series")
        if not isinstance(series, str) or not series:
            raise ProtocolError("sync_history requires a non-empty string 'series'")
        records = message.get("records")
        if not isinstance(records, dict):
            raise ProtocolError("sync_history requires a 'records' object")
        for module, value in records.items():
            _check_value(value, f"record for module {module!r}")
            if value is None:
                raise ProtocolError(f"record for module {module!r} must be numeric")
        for field in ("updates", "watermark"):
            value = message.get(field)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise ProtocolError(
                    f"sync_history {field!r} must be an integer when present"
                )
    return op


def error_response(
    message: str, code: ErrorCode = ErrorCode.PROTOCOL
) -> Dict[str, Any]:
    """The uniform error envelope: ``{ok, error, code}``.

    Every handler error — whatever the tier — is reported through this
    shape; ``code`` is the machine-readable :class:`ErrorCode` value.
    """
    return {"ok": False, "error": message, "code": str(getattr(code, "value", code))}


def error_response_for(exc: BaseException) -> Dict[str, Any]:
    """The error envelope for a raised exception, honouring its code."""
    from ..exceptions import SpecificationError

    code = getattr(exc, "code", None)
    if not isinstance(code, ErrorCode):
        code = (
            ErrorCode.SPEC
            if isinstance(exc, SpecificationError)
            else ErrorCode.INTERNAL
        )
    if isinstance(exc, ProtocolError):
        return error_response(str(exc), code)
    return error_response(f"{type(exc).__name__}: {exc}", code)


def ok_response(**payload: Any) -> Dict[str, Any]:
    response = {"ok": True}
    response.update(payload)
    return response
