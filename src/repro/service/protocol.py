"""Line-delimited JSON protocol for the voter service.

Every request and response is one JSON object on one line (UTF-8,
``\\n``-terminated).  Requests carry an ``op`` field; responses carry
``ok`` (bool) plus either the operation's payload or an ``error``
string.

Operations:

====================  =====================================================
``ping``              liveness check; echoes ``{"ok": true, "pong": true}``
``spec``              the service's active VDX document
``vote``              vote a complete round: ``{"op": "vote", "round": 3,
                      "values": {"E1": 18.0, "E2": null}}``
``submit``            incremental submission of one module's reading:
                      ``{"op": "submit", "round": 3, "module": "E1",
                      "value": 18.0}``
``close_round``       vote whatever has been submitted for a round
``history``           current per-module history records
``stats``             rounds processed/degraded, last output, plus a
                      structured ``snapshot`` of engine/service metrics
``metrics``           Prometheus text exposition of the service's
                      metrics registry (see :mod:`repro.obs`)
``reset``             reset voter history and engine state
``hello``             version handshake: ``{"op": "hello", "version": 2}``;
                      a mismatched peer gets a clear error instead of a
                      decode failure deeper in the exchange.  The reply
                      advertises capabilities (``replays_votes``)
``vote_batch``        vote many rounds across many series in one
                      round-trip (the cluster micro-batching hot path):
                      ``{"op": "vote_batch", "batches": [{"series": "s",
                      "rounds": [0, 1], "modules": ["E1"],
                      "rows": [[18.0], [18.1]]}]}``
``route``             (gateway) replica set for a series key
``cluster_stats``     (gateway) ring membership, backend liveness and
                      per-shard counters
``sync_history``      (shard backend) install history records for one
                      series — the rebalance/failover seeding write;
                      optional ``updates`` (history update counter) and
                      ``watermark`` (highest voted round) version the
                      seed so a stale snapshot cannot rewind a shard
====================  =====================================================

Sharded servers accept an optional ``series`` string on ``vote``,
``submit``, ``close_round``, ``history``, ``stats`` and ``reset`` to
select one of their hosted series; the plain single-engine
:class:`~repro.service.server.VoterServer` ignores it.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict

from ..exceptions import ReproError

#: Wire-protocol version.  Bumped to 2 when the cluster operations
#: (``hello``/``vote_batch``/``route``/``cluster_stats``/``sync_history``)
#: and the optional ``series`` field were added.
PROTOCOL_VERSION = 2

#: All operations the server understands.
OPERATIONS = (
    "ping",
    "spec",
    "vote",
    "submit",
    "close_round",
    "history",
    "stats",
    "metrics",
    "reset",
    "configure",
    "hello",
    "vote_batch",
    "route",
    "cluster_stats",
    "sync_history",
)

#: Cap on a single protocol line; longer lines are rejected (guards the
#: server against unbounded buffering from a misbehaving client).
MAX_LINE_BYTES = 1_048_576


class ProtocolError(ReproError):
    """A message violated the wire protocol."""


class ConnectionClosedError(ProtocolError):
    """The peer closed the connection mid-exchange (retryable)."""


class VersionMismatchError(ProtocolError):
    """The peers speak different protocol versions."""


def _jsonable(value: Any) -> Any:
    """Make a value JSON-encodable (NaN becomes null)."""
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def encode_message(message: Dict[str, Any]) -> bytes:
    """Encode one protocol message as a JSON line."""
    text = json.dumps(
        {k: _jsonable(v) for k, v in message.items()}, allow_nan=False
    )
    data = text.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
    return data


def decode_message(line: bytes) -> Dict[str, Any]:
    """Decode one JSON line into a message dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON line: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def _check_value(value: Any, label: str) -> None:
    """Reject anything but null or a finite non-bool number.

    Booleans pass ``isinstance(value, int)`` and JSON ``Infinity`` /
    ``NaN`` literals parse as floats — both would survive a naive
    numeric check only to blow up (or be unserialisable,
    ``allow_nan=False``) deeper in the server.
    """
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{label} must be numeric or null")
    if not math.isfinite(value):
        raise ProtocolError(f"{label} must be finite")


def _check_series(message: Dict[str, Any], op: str) -> None:
    """An optional ``series`` field must be a non-empty string."""
    series = message.get("series")
    if series is not None and (not isinstance(series, str) or not series):
        raise ProtocolError(f"{op} 'series' must be a non-empty string")


def _check_batches(batches: Any) -> None:
    """Shape-check a ``vote_batch`` payload.

    Row *values* are validated vectorially by the server (a single
    ``isfinite`` sweep over the assembled matrix), not per cell here —
    this is the micro-batching hot path.
    """
    if not isinstance(batches, list) or not batches:
        raise ProtocolError("vote_batch requires a non-empty 'batches' list")
    for batch in batches:
        if not isinstance(batch, dict):
            raise ProtocolError("each vote_batch batch must be an object")
        series = batch.get("series")
        if not isinstance(series, str) or not series:
            raise ProtocolError("each batch requires a non-empty string 'series'")
        rounds = batch.get("rounds")
        rows = batch.get("rows")
        modules = batch.get("modules")
        if not isinstance(rounds, list) or not rounds or not all(
            isinstance(r, int) and not isinstance(r, bool) for r in rounds
        ):
            raise ProtocolError(
                f"batch for series {series!r} requires a list of integer 'rounds'"
            )
        if not isinstance(modules, list) or not modules or not all(
            isinstance(m, str) for m in modules
        ):
            raise ProtocolError(
                f"batch for series {series!r} requires a list of string 'modules'"
            )
        if not isinstance(rows, list) or len(rows) != len(rounds):
            raise ProtocolError(
                f"batch for series {series!r} requires one row per round"
            )
        for row in rows:
            if not isinstance(row, list) or len(row) != len(modules):
                raise ProtocolError(
                    f"batch for series {series!r} has a row that does not "
                    f"match its module list"
                )


def validate_request(message: Dict[str, Any]) -> str:
    """Check a request's shape; returns the operation name."""
    op = message.get("op")
    if not isinstance(op, str) or op not in OPERATIONS:
        raise ProtocolError(f"unknown or missing op {op!r}")
    if op in ("vote", "submit", "close_round", "history", "stats", "reset"):
        _check_series(message, op)
    if op == "vote":
        if not isinstance(message.get("round"), int):
            raise ProtocolError("vote requires an integer 'round'")
        values = message.get("values")
        if not isinstance(values, dict) or not values:
            raise ProtocolError("vote requires a non-empty 'values' object")
        for module, value in values.items():
            _check_value(value, f"value for module {module!r}")
    elif op == "submit":
        if not isinstance(message.get("round"), int):
            raise ProtocolError("submit requires an integer 'round'")
        if not isinstance(message.get("module"), str):
            raise ProtocolError("submit requires a string 'module'")
        _check_value(message.get("value"), "submit 'value'")
    elif op == "close_round":
        if not isinstance(message.get("round"), int):
            raise ProtocolError("close_round requires an integer 'round'")
    elif op == "configure":
        if not isinstance(message.get("spec"), dict):
            raise ProtocolError("configure requires a 'spec' object")
    elif op == "hello":
        version = message.get("version")
        if not isinstance(version, int) or isinstance(version, bool):
            raise ProtocolError("hello requires an integer 'version'")
    elif op == "vote_batch":
        _check_batches(message.get("batches"))
    elif op == "route":
        series = message.get("series")
        if not isinstance(series, str) or not series:
            raise ProtocolError("route requires a non-empty string 'series'")
    elif op == "sync_history":
        series = message.get("series")
        if not isinstance(series, str) or not series:
            raise ProtocolError("sync_history requires a non-empty string 'series'")
        records = message.get("records")
        if not isinstance(records, dict):
            raise ProtocolError("sync_history requires a 'records' object")
        for module, value in records.items():
            _check_value(value, f"record for module {module!r}")
            if value is None:
                raise ProtocolError(f"record for module {module!r} must be numeric")
        for field in ("updates", "watermark"):
            value = message.get(field)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise ProtocolError(
                    f"sync_history {field!r} must be an integer when present"
                )
    return op


def error_response(message: str) -> Dict[str, Any]:
    return {"ok": False, "error": message}


def ok_response(**payload: Any) -> Dict[str, Any]:
    response = {"ok": True}
    response.update(payload)
    return response
