"""Fault-magnitude robustness sweep: each algorithm's operating envelope.

The paper evaluates one fault magnitude (+6 kilolumen, ~33 % of signal).
This experiment maps the whole envelope: sweeping the injected offset
from well inside the agreement margin to far outside it, and measuring
each algorithm's residual error, reveals three regimes —

* **sub-margin** faults (offset ≲ ε·value) are indistinguishable from
  calibration spread: no voter can remove them, the error grows
  linearly with the offset for everyone;
* **trans-margin** faults (around the soft zone) are the hard case:
  agreement scores are partial, elimination is unreliable;
* **super-margin** faults are cleanly excluded by everything
  history-aware or clustering-based, so the residual error *drops back
  to (near) zero* — the counter-intuitive non-monotonicity that makes
  the envelope worth plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..analysis.diff import run_voter_series
from ..datasets.dataset import Dataset
from ..datasets.injection import offset_fault
from ..datasets.light_uc1 import UC1Config, generate_uc1_dataset
from ..runtime.pool import parallel_map
from ..voting.registry import create_voter
from ._parallel import dataset_payload, materialise

#: Offsets to sweep, in kilolumen (the margin sits around 0.9).
DEFAULT_DELTAS: Tuple[float, ...] = (0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 6.0, 12.0)

DEFAULT_ALGORITHMS: Tuple[str, ...] = (
    "average",
    "me",
    "hybrid",
    "clustering",
    "avoc",
)


@dataclass
class RobustnessResult:
    """Residual error per (algorithm, fault magnitude)."""

    deltas: Tuple[float, ...]
    algorithms: Tuple[str, ...]
    #: residual[algorithm][i] = mean |fault − clean| output for deltas[i],
    #: measured after the warm-up rounds.
    residual: Dict[str, list] = field(default_factory=dict)

    def series(self, algorithm: str) -> np.ndarray:
        return np.asarray(self.residual[algorithm])

    def breakdown_delta(self, algorithm: str, fraction: float = 0.5):
        """Largest swept delta whose residual still exceeds
        ``fraction`` of the naive (average) residual — i.e. where the
        algorithm has *not yet* recovered.  None if it always recovers.
        """
        naive = self.series("average")
        own = self.series(algorithm)
        bad = [d for d, o, n in zip(self.deltas, own, naive) if o > fraction * n]
        return max(bad) if bad else None


def _sweep_cell(payload, cell):
    handle, fault_module = payload
    algorithm, delta = cell
    dataset = materialise(handle)
    if delta is not None:
        dataset = offset_fault(dataset, fault_module, delta)
    return run_voter_series(create_voter(algorithm), dataset)


def run_robustness_sweep(
    clean: Dataset = None,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    fault_module: str = "E4",
    warmup: int = 10,
    workers: Optional[int] = 1,
) -> RobustnessResult:
    """Sweep fault magnitudes over every algorithm.

    Args:
        clean: the clean dataset (default: a 400-round UC-1 recording).
        deltas: offsets to inject, in data units.
        algorithms: registry names to evaluate.
        fault_module: which module carries the fault.
        warmup: rounds skipped before measuring the residual, so the
            metric reflects the settled behaviour rather than the spike.
        workers: the (algorithm, delta) grid cells run on this many
            worker processes; the clean matrix travels once through
            shared memory and each worker injects its own fault copy.
            The result is identical for any value.
    """
    if clean is None:
        clean = generate_uc1_dataset(UC1Config(n_rounds=400))
    result = RobustnessResult(
        deltas=tuple(deltas), algorithms=tuple(algorithms)
    )
    cells = [(algorithm, None) for algorithm in algorithms]
    cells += [
        (algorithm, delta) for algorithm in algorithms for delta in deltas
    ]
    with dataset_payload((clean,), workers) as (handle,):
        outputs = parallel_map(
            _sweep_cell,
            cells,
            workers=workers,
            payload=(handle, fault_module),
        )
    clean_outputs = dict(zip(algorithms, outputs))
    pos = len(algorithms)
    for algorithm in algorithms:
        residuals = []
        for _ in deltas:
            diff = np.abs(outputs[pos] - clean_outputs[algorithm])[warmup:]
            residuals.append(float(np.nanmean(diff)))
            pos += 1
        result.residual[algorithm] = residuals
    return result
