"""Adversarial ranking sweep: algorithm × threat model × severity.

Runs every requested algorithm against every registered adversarial
scenario (:mod:`repro.datasets.scenarios`) at several severities and
ranks them per threat model — turning the single-fault robustness
figure into a capability matrix.

Metrics (lower is better for both kinds):

* numeric scenarios — the residual ``mean |faulty − clean|`` of the
  fused output after the warm-up rounds, exactly the
  :mod:`repro.experiments.robustness` metric;
* categorical scenarios — the fused error rate against the scenario's
  ground truth after warm-up (held/skipped rounds count as errors only
  when the substituted value disagrees with the truth).

The (scenario, algorithm, severity) grid cells are independent, so the
sweep fans out over the runtime worker pool with the clean UC-1 base
travelling once through shared memory; results are identical at any
worker count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.diff import run_voter_series
from ..datasets.light_uc1 import UC1Config, generate_uc1_dataset
from ..datasets.scenarios import (
    SCENARIOS,
    available_scenarios,
    build_scenario,
)
from ..exceptions import ConfigurationError
from ..runtime.pool import parallel_map
from ..types import Round
from ..voting.registry import (
    available_algorithms,
    categorical_algorithms,
    create_voter,
)
from ._parallel import dataset_payload, materialise

#: Numeric contenders: the zoo's ranked families plus the new masker.
DEFAULT_NUMERIC_ALGORITHMS: Tuple[str, ...] = (
    "average",
    "median",
    "me",
    "hybrid",
    "clustering",
    "avoc",
    "incoherence",
)

#: Categorical contenders.
DEFAULT_CATEGORICAL_ALGORITHMS: Tuple[str, ...] = (
    "categorical_majority",
    "probabilistic",
)

DEFAULT_SEVERITIES: Tuple[float, ...] = (1.0, 3.0, 6.0)


@dataclass
class AdversarialResult:
    """Per-cell metrics plus per-scenario rankings."""

    scenarios: Tuple[str, ...]
    severities: Tuple[float, ...]
    rounds: int
    seed: int
    warmup: int
    #: algorithms evaluated per scenario (kind-dependent).
    algorithms: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: metric[(scenario, algorithm, severity)] — lower is better.
    metrics: Dict[Tuple[str, str, float], float] = field(default_factory=dict)

    def metric(self, scenario: str, algorithm: str, severity: float) -> float:
        return self.metrics[(scenario, str(algorithm), float(severity))]

    def mean_metric(self, scenario: str, algorithm: str) -> float:
        """Severity-averaged metric for one (scenario, algorithm)."""
        values = [
            self.metrics[(scenario, algorithm, severity)]
            for severity in self.severities
        ]
        return float(np.mean(values))

    def ranking(self, scenario: str) -> List[Tuple[str, float]]:
        """Algorithms best-first by severity-averaged metric."""
        pairs = [
            (algorithm, self.mean_metric(scenario, algorithm))
            for algorithm in self.algorithms[scenario]
        ]
        return sorted(pairs, key=lambda pair: (pair[1], pair[0]))

    def winner(self, scenario: str) -> str:
        return self.ranking(scenario)[0][0]

    def ranking_rows(self) -> List[Dict]:
        """One row per scenario, ready for EXPERIMENTS.md."""
        rows = []
        for scenario in self.scenarios:
            ranking = self.ranking(scenario)
            rows.append(
                {
                    "scenario": scenario,
                    "kind": SCENARIOS[scenario].kind,
                    "winner": ranking[0][0],
                    "ranking": ranking,
                }
            )
        return rows

    def to_markdown(self) -> str:
        """Ranking tables (one per scenario kind), lower is better."""
        lines: List[str] = []
        for kind, metric_label in (
            ("numeric", "mean |faulty − clean| after warm-up"),
            ("categorical", "error rate vs ground truth after warm-up"),
        ):
            scenarios = [
                s for s in self.scenarios if SCENARIOS[s].kind == kind
            ]
            if not scenarios:
                continue
            algorithms = self.algorithms[scenarios[0]]
            lines.append(
                f"### {kind.capitalize()} scenarios ({metric_label}; "
                f"severity-averaged, lower is better)"
            )
            lines.append("")
            header = ["scenario"] + list(algorithms) + ["winner"]
            lines.append("| " + " | ".join(header) + " |")
            lines.append("|" + "---|" * len(header))
            for scenario in scenarios:
                winner = self.winner(scenario)
                cells = [scenario]
                for algorithm in algorithms:
                    value = self.mean_metric(scenario, algorithm)
                    text = f"{value:.4f}"
                    cells.append(
                        f"**{text}**" if algorithm == winner else text
                    )
                cells.append(winner)
                lines.append("| " + " | ".join(cells) + " |")
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    def to_json(self) -> str:
        cells = [
            {
                "scenario": scenario,
                "algorithm": algorithm,
                "severity": severity,
                "metric": metric,
            }
            for (scenario, algorithm, severity), metric in sorted(
                self.metrics.items()
            )
        ]
        return json.dumps(
            {
                "rounds": self.rounds,
                "seed": self.seed,
                "warmup": self.warmup,
                "severities": list(self.severities),
                "winners": {s: self.winner(s) for s in self.scenarios},
                "cells": cells,
            },
            indent=2,
            sort_keys=True,
        )


def _categorical_error_rate(algorithm, scenario_data, warmup):
    """Fused error rate against the ground truth after warm-up."""
    from ..fusion.engine import FusionEngine

    attacked = scenario_data.faulty
    voter = create_voter(algorithm)
    engine = FusionEngine(voter, roster=list(attacked.modules))
    errors = 0
    judged = 0
    for number in range(attacked.n_rounds):
        result = engine.process(
            Round.from_mapping(number, attacked.round_values(number))
        )
        if number < warmup:
            continue
        judged += 1
        if result.value != attacked.truth[number]:
            errors += 1
    return errors / judged if judged else 0.0


def _numeric_residual(algorithm, scenario_data, warmup):
    """Residual deviation of the faulty run from the clean run."""
    clean_out = run_voter_series(create_voter(algorithm), scenario_data.clean)
    fault_out = run_voter_series(create_voter(algorithm), scenario_data.faulty)
    diff = np.abs(fault_out - clean_out)[warmup:]
    return float(np.nanmean(diff))


def _sweep_cell(payload, cell):
    handle, rounds, seed, warmup = payload
    scenario, algorithm, severity = cell
    base = materialise(handle) if handle is not None else None
    data = build_scenario(
        scenario, rounds=rounds, severity=severity, seed=seed, base=base
    )
    if data.kind == "categorical":
        return _categorical_error_rate(algorithm, data, warmup)
    return _numeric_residual(algorithm, data, warmup)


def _resolve_scenarios(scenarios) -> Tuple[str, ...]:
    if scenarios is None or scenarios == "all":
        return available_scenarios()
    names = tuple(scenarios)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ConfigurationError(
            f"unknown scenarios {unknown}; available: {available_scenarios()}"
        )
    return names


def _resolve_algorithms(algorithms, kind: str) -> Tuple[str, ...]:
    if algorithms is None or algorithms == "all":
        return (
            DEFAULT_CATEGORICAL_ALGORITHMS
            if kind == "categorical"
            else DEFAULT_NUMERIC_ALGORITHMS
        )
    names = tuple(algorithms)
    unknown = [n for n in names if n not in available_algorithms()]
    if unknown:
        raise ConfigurationError(
            f"unknown algorithms {unknown}; available: {available_algorithms()}"
        )
    categorical = set(categorical_algorithms())
    if kind == "categorical":
        return tuple(n for n in names if n in categorical)
    return tuple(n for n in names if n not in categorical)


def run_adversarial_sweep(
    scenarios=None,
    algorithms=None,
    severities: Sequence[float] = DEFAULT_SEVERITIES,
    rounds: int = 400,
    seed: int = 7,
    warmup: int = 20,
    workers: Optional[int] = 1,
) -> AdversarialResult:
    """Rank algorithms per threat model.

    Args:
        scenarios: scenario names, or None/"all" for every registered
            scenario.
        algorithms: registry names, or None/"all" for the per-kind
            defaults.  An explicit list is filtered per scenario kind
            (numeric scenarios take the numeric names, categorical the
            categorical ones); scenarios left with no contenders are
            dropped.
        severities: fault severities swept per scenario (offset in
            kilolumen for the numeric scenarios, burst-dropout scale
            for the categorical one).
        rounds / seed: scenario size and generator seed.
        warmup: rounds excluded from the metric while history warms up.
        workers: worker processes for the cell grid; results are
            identical at any count.
    """
    if warmup >= rounds:
        raise ConfigurationError(
            f"warmup ({warmup}) must be below rounds ({rounds})"
        )
    severities = tuple(float(s) for s in severities)
    if not severities:
        raise ConfigurationError("need at least one severity")
    scenario_names = _resolve_scenarios(scenarios)

    per_scenario: Dict[str, Tuple[str, ...]] = {}
    for scenario in scenario_names:
        contenders = _resolve_algorithms(algorithms, SCENARIOS[scenario].kind)
        if contenders:
            per_scenario[scenario] = contenders
    if not per_scenario:
        raise ConfigurationError(
            "no (scenario, algorithm) pairs left after kind filtering"
        )

    cells = [
        (scenario, algorithm, severity)
        for scenario, contenders in per_scenario.items()
        for algorithm in contenders
        for severity in severities
    ]

    needs_base = any(SCENARIOS[s].kind == "numeric" for s in per_scenario)
    base = (
        generate_uc1_dataset(UC1Config(n_rounds=rounds)) if needs_base else None
    )
    result = AdversarialResult(
        scenarios=tuple(per_scenario),
        severities=severities,
        rounds=rounds,
        seed=seed,
        warmup=warmup,
        algorithms=per_scenario,
    )
    if base is not None:
        with dataset_payload((base,), workers) as (handle,):
            outputs = parallel_map(
                _sweep_cell,
                cells,
                workers=workers,
                payload=(handle, rounds, seed, warmup),
            )
    else:
        outputs = parallel_map(
            _sweep_cell,
            cells,
            workers=workers,
            payload=(None, rounds, seed, warmup),
        )
    for (scenario, algorithm, severity), metric in zip(cells, outputs):
        result.metrics[(scenario, algorithm, severity)] = float(metric)
    return result
