"""Experiment orchestration: one entry point per paper figure/claim.

The CLI and the benchmark suite both call into this package, so a
figure is regenerated identically however it is invoked.
"""

from .uc1 import (
    FIG6_ALGORITHMS,
    Fig6Result,
    make_uc1_voter,
    run_fig6,
)
from .uc2 import (
    FIG7_COLLATION_GROUPS,
    Fig7Result,
    run_fig7,
)
from .robustness import RobustnessResult, run_robustness_sweep
from .shelf import ShelfResult, run_shelf_experiment

__all__ = [
    "RobustnessResult",
    "run_robustness_sweep",
    "ShelfResult",
    "run_shelf_experiment",
    "FIG6_ALGORITHMS",
    "Fig6Result",
    "make_uc1_voter",
    "run_fig6",
    "FIG7_COLLATION_GROUPS",
    "Fig7Result",
    "run_fig7",
]
