"""Experiment orchestration: one entry point per paper figure/claim.

The CLI and the benchmark suite both call into this package, so a
figure is regenerated identically however it is invoked.
"""

from .uc1 import (
    FIG6_ALGORITHMS,
    Fig6Result,
    make_uc1_voter,
    run_fig6,
)
from .uc2 import (
    FIG7_COLLATION_GROUPS,
    Fig7Result,
    run_fig7,
)
from .adversarial import (
    DEFAULT_CATEGORICAL_ALGORITHMS,
    DEFAULT_NUMERIC_ALGORITHMS,
    AdversarialResult,
    run_adversarial_sweep,
)
from .robustness import RobustnessResult, run_robustness_sweep
from .shelf import ShelfResult, run_shelf_experiment

__all__ = [
    "AdversarialResult",
    "run_adversarial_sweep",
    "DEFAULT_NUMERIC_ALGORITHMS",
    "DEFAULT_CATEGORICAL_ALGORITHMS",
    "RobustnessResult",
    "run_robustness_sweep",
    "ShelfResult",
    "run_shelf_experiment",
    "FIG6_ALGORITHMS",
    "Fig6Result",
    "make_uc1_voter",
    "run_fig6",
    "FIG7_COLLATION_GROUPS",
    "Fig7Result",
    "run_fig7",
]
