"""UC-2 experiment driver: everything behind Fig. 7.

:func:`run_fig7` regenerates the three panels:

* 7-a — single beacon per stack (the no-redundancy reference);
* 7-b — plain 9-beacon average per stack;
* 7-c — AVOC voting (mean-nearest-neighbour collation) per stack;

and the paper's two observations around them: the *collation* method
splits the algorithms into two behavioural groups (averaging vs
mean-nearest-neighbour selection) while the *history* method has no
effect on this chaotic data, and averaging yields the fewest ambiguous
rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..analysis.ambiguity import (
    ambiguous_rounds,
    classification_accuracy,
    unstable_rounds,
)
from ..analysis.diff import run_voter_series
from ..datasets.ble_uc2 import UC2Config, UC2Dataset, generate_uc2_dataset
from ..runtime.pool import parallel_map
from ..voting.base import Voter
from ..voting.registry import create_voter
from ._parallel import dataset_payload, materialise

#: The two behavioural groups the paper observes on UC-2: algorithms
#: that average the (weighted) values, and algorithms that select the
#: mean-nearest-neighbour value.
FIG7_COLLATION_GROUPS: Dict[str, Tuple[str, ...]] = {
    "averaging": ("average", "standard", "me", "sdt"),
    "selection": ("hybrid", "avoc"),
}

#: RSSI separation (dB) below which the closest stack is ambiguous.
DEFAULT_MARGIN_DB = 5.0

#: BLE RSSI needs a larger relative error threshold than light: 5 % of
#: -70 dBm is only 3.5 dB, below the fading floor.  10 % keeps the
#: agreement margin physically meaningful.
UC2_ERROR = 0.10


def make_uc2_voter(algorithm: str) -> Voter:
    """A fresh voter configured for UC-2's noisier RSSI data."""
    if algorithm == "average":
        return create_voter(algorithm)
    base = create_voter(algorithm)
    params = base.params.with_overrides(error=UC2_ERROR)
    return create_voter(algorithm, params=params)


@dataclass
class Fig7Result:
    """All series behind Fig. 7, keyed by stack name ('A'/'B')."""

    dataset: UC2Dataset
    margin_db: float
    single_beacon: Dict[str, np.ndarray] = field(default_factory=dict)
    nine_average: Dict[str, np.ndarray] = field(default_factory=dict)
    avoc_voting: Dict[str, np.ndarray] = field(default_factory=dict)
    per_algorithm: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)

    def _panel(self, panel: str) -> Dict[str, np.ndarray]:
        return getattr(self, panel)

    def ambiguity(self, panel: str) -> int:
        """RSSI-margin ambiguous-round count for one panel."""
        series = self._panel(panel)
        return ambiguous_rounds(series["A"], series["B"], self.margin_db)

    def instability(self, panel: str) -> int:
        """Locally non-unanimous closest-stack calls for one panel."""
        series = self._panel(panel)
        return unstable_rounds(series["A"], series["B"])

    def accuracy(self, panel: str) -> float:
        """Closest-stack accuracy vs the ground-truth trajectory."""
        series = self._panel(panel)
        return classification_accuracy(
            series["A"], series["B"], self.dataset.true_closest()
        )

    def algorithm_ambiguity(self) -> Dict[str, int]:
        """RSSI-margin ambiguous rounds per algorithm."""
        return {
            name: ambiguous_rounds(series["A"], series["B"], self.margin_db)
            for name, series in self.per_algorithm.items()
        }

    def algorithm_instability(self) -> Dict[str, int]:
        """Unstable closest-stack rounds per algorithm.

        This is the collation-group comparison of §7: the averaging
        group scores lower (more stable) than the mean-nearest-
        neighbour selection group, and within each group the history
        method makes no difference.
        """
        return {
            name: unstable_rounds(series["A"], series["B"])
            for name, series in self.per_algorithm.items()
        }


def _fig7_cell(payload, cell):
    stack, algorithm = cell
    return run_voter_series(make_uc2_voter(algorithm), materialise(payload[stack]))


def run_fig7(
    config: UC2Config = UC2Config(),
    margin_db: float = DEFAULT_MARGIN_DB,
    algorithms: Tuple[str, ...] = (
        "average",
        "standard",
        "me",
        "sdt",
        "hybrid",
        "avoc",
    ),
    workers: Optional[int] = 1,
) -> Fig7Result:
    """Run the full UC-2 comparison on a freshly generated dataset.

    Every (stack, algorithm) series is an independent cell and fans out
    over ``workers`` processes; each stack's matrix travels once
    through shared memory.  The result is identical for any ``workers``
    value.
    """
    dataset = generate_uc2_dataset(config)
    result = Fig7Result(dataset=dataset, margin_db=margin_db)

    stacks = dataset.stacks()
    cells = [
        (stack, algorithm)
        for stack in stacks
        for algorithm in ("average", "avoc")
    ]
    cells += [
        (stack, algorithm) for algorithm in algorithms for stack in stacks
    ]
    with dataset_payload(list(stacks.values()), workers) as handles:
        outputs = parallel_map(
            _fig7_cell,
            cells,
            workers=workers,
            payload=dict(zip(stacks.keys(), handles)),
        )

    pos = 0
    for stack, ds in stacks.items():
        # Fig. 7-a: only the first beacon of the stack.
        result.single_beacon[stack] = ds.column(ds.modules[0])
        # Fig. 7-b: plain average over all nine beacons.
        result.nine_average[stack] = outputs[pos]
        # Fig. 7-c: AVOC per stack.
        result.avoc_voting[stack] = outputs[pos + 1]
        pos += 2
    for algorithm in algorithms:
        series = {}
        for stack in stacks:
            series[stack] = outputs[pos]
            pos += 1
        result.per_algorithm[algorithm] = series
    return result
