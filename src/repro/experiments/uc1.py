"""UC-1 experiment driver: everything behind Fig. 6 and the 4× claim.

One call to :func:`run_fig6` regenerates the data behind all six panels:

* 6-a — the raw reference dataset;
* 6-b — voting output of the six variants on the raw data;
* 6-c — the reference data with the +6 kilolumen fault on E4;
* 6-d — voting output under the fault;
* 6-e — per-algorithm differentials (fault output − clean output);
* 6-f — the same differentials zoomed to the first rounds, where the
  AVOC bootstrap acts;

plus the convergence rounds per algorithm and the AVOC-vs-Hybrid
convergence boost (the abstract's 4×).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..analysis.convergence import convergence_round
from ..analysis.diff import run_voter_series
from ..datasets.dataset import Dataset
from ..datasets.injection import offset_fault
from ..datasets.light_uc1 import UC1Config, generate_uc1_dataset
from ..fusion.engine import FusionEngine
from ..runtime.pool import parallel_map
from ..voting.base import Voter
from ..voting.registry import create_voter
from ._parallel import dataset_payload, materialise

#: The six variants compared in Fig. 6 (paper labels:
#: avg. / standard / ME / Hybrid / Clustering / AVOC).
FIG6_ALGORITHMS: Tuple[str, ...] = (
    "average",
    "standard",
    "me",
    "hybrid",
    "clustering",
    "avoc",
)

#: The fault of Fig. 6-c: +6 on the kilolumen axis, sensor E4.
FAULT_MODULE = "E4"
FAULT_DELTA = 6.0


def make_uc1_voter(algorithm: str) -> Voter:
    """A fresh voter configured for UC-1 (paper defaults: ε=5 %, k=2)."""
    return create_voter(algorithm)


@dataclass
class Fig6Result:
    """All series behind Fig. 6, keyed by algorithm name.

    Two convergence readings are reported, following the paper's §7
    metric (a) — "voting rounds required to converge back to the
    baseline, and by extension how quickly outliers are eliminated":

    * ``convergence_rounds`` — settling round of the output diff
      (sensitive to the residual pick-flip spikes the paper also shows
      in Fig. 6-e);
    * ``exclusion_rounds`` — first round from which the faulty module
      stays zero-weighted (the robust "outlier eliminated" reading; the
      headline 4× boost is computed on this one).
    """

    clean: Dataset
    faulty: Dataset
    fault_module: str = FAULT_MODULE
    clean_outputs: Dict[str, np.ndarray] = field(default_factory=dict)
    fault_outputs: Dict[str, np.ndarray] = field(default_factory=dict)
    diffs: Dict[str, np.ndarray] = field(default_factory=dict)
    convergence_rounds: Dict[str, int] = field(default_factory=dict)
    exclusion_rounds: Dict[str, int] = field(default_factory=dict)
    tolerance: float = 0.3

    @property
    def boost(self) -> float:
        """AVOC's convergence boost over plain Hybrid (the 4× claim).

        Ratio of 1-indexed outlier-exclusion rounds.
        """
        hybrid = self.exclusion_rounds["hybrid"] + 1
        avoc = self.exclusion_rounds["avoc"] + 1
        return hybrid / avoc

    def zoom(self, algorithm: str, rounds: int = 10) -> np.ndarray:
        """Fig. 6-f: the first ``rounds`` entries of one diff series."""
        return self.diffs[algorithm][:rounds]


def exclusion_round(voter: Voter, faulty: Dataset, module: str) -> int:
    """First round from which ``module`` stays zero-weighted.

    Returns the dataset length when the module is never (permanently)
    excluded — e.g. for stateless averaging or the Standard voter.
    """
    voter.reset()
    engine = FusionEngine(voter, roster=list(faulty.modules))
    batch = engine.process_batch(
        faulty.matrix, list(faulty.modules), diagnostics=True
    )
    weights = batch.module_weight(module)
    included = np.flatnonzero(~np.isnan(weights) & (weights != 0.0))
    last_included = int(included[-1]) if included.size else -1
    return min(last_included + 1, faulty.n_rounds)


def _fig6_cell(payload, cell):
    clean, faulty, fault_module = payload
    algorithm, kind = cell
    if kind == "clean":
        return run_voter_series(make_uc1_voter(algorithm), materialise(clean))
    if kind == "fault":
        return run_voter_series(make_uc1_voter(algorithm), materialise(faulty))
    return exclusion_round(
        make_uc1_voter(algorithm), materialise(faulty), fault_module
    )


def run_fig6(
    config: UC1Config = UC1Config(),
    fault_module: str = FAULT_MODULE,
    fault_delta: float = FAULT_DELTA,
    tolerance: float = 0.3,
    workers: Optional[int] = 1,
) -> Fig6Result:
    """Run the full UC-1 comparison on a freshly generated dataset.

    The 6 algorithms × {clean, fault, exclusion} cells are independent
    and fan out over ``workers`` processes; the clean and faulty
    matrices travel once through shared memory.  The result is
    identical for any ``workers`` value.
    """
    clean = generate_uc1_dataset(config)
    faulty = offset_fault(clean, fault_module, fault_delta)
    result = Fig6Result(
        clean=clean, faulty=faulty, fault_module=fault_module, tolerance=tolerance
    )
    cells = [
        (algorithm, kind)
        for algorithm in FIG6_ALGORITHMS
        for kind in ("clean", "fault", "exclusion")
    ]
    with dataset_payload((clean, faulty), workers) as (clean_h, faulty_h):
        outputs = parallel_map(
            _fig6_cell,
            cells,
            workers=workers,
            payload=(clean_h, faulty_h, fault_module),
        )
    by_cell = dict(zip(cells, outputs))
    for algorithm in FIG6_ALGORITHMS:
        clean_out = by_cell[(algorithm, "clean")]
        fault_out = by_cell[(algorithm, "fault")]
        diff = fault_out - clean_out
        result.clean_outputs[algorithm] = clean_out
        result.fault_outputs[algorithm] = fault_out
        result.diffs[algorithm] = diff
        result.convergence_rounds[algorithm] = convergence_round(diff, tolerance)
        result.exclusion_rounds[algorithm] = by_cell[(algorithm, "exclusion")]
    return result
