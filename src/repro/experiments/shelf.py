"""Smart-shelf experiment driver (the introduction's third scenario).

Quantifies the intro's claim that shelf-label deployments push
redundancy "to dozens of proximity sensors": occupancy accuracy of the
categorical weighted-majority voter per history mode and redundancy
level, against the best single sensor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..datasets.shelf import ShelfConfig, ShelfDataset, generate_shelf_dataset
from ..types import Round
from ..voting.categorical import CategoricalMajorityVoter

HISTORY_MODES: Tuple[str, ...] = ("none", "standard", "me")


@dataclass
class ShelfResult:
    """Accuracies per history mode, plus single-sensor references."""

    dataset: ShelfDataset
    fused_accuracy: Dict[str, float] = field(default_factory=dict)
    sensor_accuracy: Dict[str, float] = field(default_factory=dict)

    @property
    def best_single(self) -> float:
        return max(self.sensor_accuracy.values())

    @property
    def worst_single(self) -> float:
        return min(self.sensor_accuracy.values())


def _sensor_accuracies(dataset: ShelfDataset) -> Dict[str, float]:
    accuracies = {}
    for idx, module in enumerate(dataset.modules):
        pairs = [
            (row[idx], truth)
            for row, truth in zip(dataset.readings, dataset.truth)
            if row[idx] is not None
        ]
        accuracies[module] = (
            sum(1 for r, t in pairs if r == t) / len(pairs) if pairs else 0.0
        )
    return accuracies


def run_shelf_experiment(
    config: ShelfConfig = ShelfConfig(),
    history_modes: Tuple[str, ...] = HISTORY_MODES,
) -> ShelfResult:
    """Run the categorical voter over the shelf scenario per mode."""
    dataset = generate_shelf_dataset(config)
    result = ShelfResult(
        dataset=dataset, sensor_accuracy=_sensor_accuracies(dataset)
    )
    for mode in history_modes:
        voter = CategoricalMajorityVoter(history_mode=mode)
        outputs: List = []
        for number in range(dataset.n_rounds):
            voting_round = Round.from_mapping(number, dataset.round_values(number))
            outputs.append(voter.vote(voting_round).value)
        result.fused_accuracy[mode] = dataset.accuracy_of(outputs)
    return result
