"""Fan experiment cells over the runtime worker pool.

The experiment drivers all share one shape: a grid of independent
(algorithm, dataset-variant) cells, each running one voter over one
rounds × modules matrix.  :func:`dataset_payload` prepares the datasets
for the pool — each matrix is copied **once** into a
:class:`~repro.runtime.sharedmem.SharedMatrix` segment that every
worker maps, while the cheap skeleton (names, modules, metadata)
travels by fork inheritance.  :func:`materialise` rebuilds a
:class:`Dataset` view on the worker side without copying the floats.

When the driver runs in-process (``workers=1`` or no ``fork``), the
datasets pass through untouched and no segment is ever created.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, List, Sequence, Tuple, Union

from ..datasets.dataset import Dataset
from ..runtime.pool import fork_available, resolve_workers
from ..runtime.sharedmem import SharedMatrix

__all__ = ["DatasetHandle", "dataset_payload", "materialise"]

#: Either a plain dataset (in-process) or a (segment, skeleton) pair.
DatasetHandle = Union[Dataset, Tuple[SharedMatrix, dict]]


@contextmanager
def dataset_payload(
    datasets: Sequence[Dataset], workers: Any
) -> Iterator[List[DatasetHandle]]:
    """Yield worker-ready handles for ``datasets``; owns the segments.

    The segments live exactly as long as the ``with`` block, so run the
    parallel map inside it.
    """
    if resolve_workers(workers) == 1 or not fork_available():
        yield list(datasets)
        return
    segments: List[SharedMatrix] = []
    try:
        handles: List[DatasetHandle] = []
        for dataset in datasets:
            segment = SharedMatrix.from_array(dataset.matrix)
            segments.append(segment)
            handles.append(
                (
                    segment,
                    {
                        "name": dataset.name,
                        "modules": list(dataset.modules),
                        "times": dataset.times,
                        "metadata": dataset.metadata,
                    },
                )
            )
        yield handles
    finally:
        for segment in segments:
            segment.unlink()
            segment.close()


def materialise(handle: DatasetHandle) -> Dataset:
    """The dataset behind a handle (zero-copy for shared segments)."""
    if isinstance(handle, Dataset):
        return handle
    segment, skeleton = handle
    return Dataset(matrix=segment.asarray(), **skeleton)
