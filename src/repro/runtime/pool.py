"""The worker-pool abstraction behind every parallel sweep.

:class:`WorkerPool` wraps :class:`concurrent.futures.ProcessPoolExecutor`
with the three properties the sweeps and searches need:

* **zero-copy payload distribution** — the pool is created *after* a
  per-pool payload (datasets, objectives, shared-memory handles) is
  parked in a module-level table; the ``fork`` start method makes every
  worker inherit that table, so closures and large arrays reach the
  workers without pickling.  Combined with
  :class:`~repro.runtime.sharedmem.SharedMatrix` payload entries, the
  rounds × modules matrices are never copied at all.
* **chunked scheduling with deterministic ordering** — :meth:`map`
  splits the items into index-tagged chunks, hands them to whichever
  worker is free, and reassembles results by index.  The output order
  (and therefore every downstream reduction) is identical regardless of
  worker count or completion order.
* **graceful degradation** — ``workers=1``, a platform without the
  ``fork`` start method, or an unavailable executor all fall back to
  plain in-process execution with the exact same calling convention, so
  callers never branch.

A crashed task (an exception, or a worker killed hard) cancels the
remaining work, shuts the pool down, and re-raises in the caller — no
hang, no orphaned processes.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..obs import RuntimeInstruments, get_default_registry

__all__ = ["WorkerPool", "fork_available", "parallel_map", "resolve_workers"]

#: Per-pool payloads, inherited by workers through fork.  Keyed by a
#: process-unique token so nested / concurrent pools cannot collide.
_PAYLOADS: Dict[str, Any] = {}
_TOKENS = itertools.count()


def fork_available() -> bool:
    """True when the platform supports the ``fork`` start method."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` argument: None means one per CPU."""
    if workers is None:
        workers = os.cpu_count() or 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _run_chunk(fn: Callable, token: Optional[str], chunk: List[Any]):
    """Execute one chunk of items in a worker (or in-process).

    Returns ``(elapsed_seconds, results)`` — worker processes cannot
    update the parent's metrics registry, so in-task time travels back
    with the results and is aggregated parent-side.
    """
    start = time.perf_counter()
    if token is None:
        results = [fn(item) for item in chunk]
    else:
        payload = _PAYLOADS[token]
        results = [fn(payload, item) for item in chunk]
    return time.perf_counter() - start, results


class WorkerPool:
    """A process pool with payload inheritance and ordered chunked map.

    Args:
        workers: worker-process count; ``None`` means one per CPU and
            ``1`` selects in-process execution (no processes at all).
        payload: optional per-pool context (datasets, objectives,
            :class:`SharedMatrix` handles).  When given, task functions
            are called as ``fn(payload, item)``; without it, ``fn(item)``.
            The payload travels to workers by fork inheritance, never by
            pickling, so closures are fine.
        chunk_size: default items per scheduled task (None: item count
            split into ~4 chunks per worker, a balance between
            scheduling overhead and load balancing).
        registry: metrics registry for the pool's runtime instruments
            (default: the process-global registry from :mod:`repro.obs`).

    The pool is reusable across :meth:`map` calls (a genetic search
    scores every generation on one pool) and must be closed — use it as
    a context manager.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        payload: Any = None,
        chunk_size: Optional[int] = None,
        registry=None,
    ):
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        self._obs = RuntimeInstruments(
            registry if registry is not None else get_default_registry()
        )
        self._payload = payload
        self._has_payload = payload is not None
        self._token: Optional[str] = None
        self._executor: Optional[ProcessPoolExecutor] = None
        self.in_process = self.workers == 1 or not fork_available()
        if not self.in_process:
            if self._has_payload:
                self._token = f"pool-{os.getpid()}-{next(_TOKENS)}"
                _PAYLOADS[self._token] = payload
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
            )

    # -- scheduling --------------------------------------------------------

    def _chunks(self, items: Sequence[Any], chunk_size: Optional[int]):
        size = chunk_size or self.chunk_size
        if size is None:
            size = max(1, -(-len(items) // (self.workers * 4)))
        size = max(1, int(size))
        for start in range(0, len(items), size):
            yield start, list(items[start : start + size])

    def map(
        self,
        fn: Callable,
        items: Iterable[Any],
        chunk_size: Optional[int] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every item; results come back in input order.

        ``fn`` must be a module-level (picklable-by-reference) callable.
        With a pool payload it is called as ``fn(payload, item)``.  Any
        task exception cancels the remaining chunks, shuts the executor
        down, and re-raises here.
        """
        items = list(items)
        if not items:
            return []
        obs = self._obs
        wall_start = time.perf_counter() if obs.enabled else 0.0
        if self._executor is None:
            if self._has_payload:
                results = [fn(self._payload, item) for item in items]
            else:
                results = [fn(item) for item in items]
            if obs.enabled:
                elapsed = time.perf_counter() - wall_start
                obs.chunks.inc()
                obs.wall_seconds.set(elapsed)
                obs.worker_seconds.set(elapsed)
            return results

        results: List[Any] = [None] * len(items)
        worker_seconds = 0.0
        futures = {}
        try:
            for offset, chunk in self._chunks(items, chunk_size):
                future = self._executor.submit(_run_chunk, fn, self._token, chunk)
                futures[future] = offset
            obs.chunks.inc(len(futures))
            for future, offset in futures.items():
                elapsed, chunk_results = future.result()
                worker_seconds += elapsed
                results[offset : offset + len(chunk_results)] = chunk_results
        except BaseException:
            # A worker raised (or died): stop scheduling, reap the rest,
            # and surface the original exception to the caller.
            obs.crashes.inc()
            self.close(cancel=True)
            raise
        if obs.enabled:
            obs.wall_seconds.set(time.perf_counter() - wall_start)
            obs.worker_seconds.set(worker_seconds)
        return results

    # -- lifecycle ---------------------------------------------------------

    def close(self, cancel: bool = False) -> None:
        """Shut the executor down and release the payload (idempotent)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=cancel)
        if self._token is not None:
            _PAYLOADS.pop(self._token, None)
            self._token = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close(cancel=exc[0] is not None)


def parallel_map(
    fn: Callable,
    items: Iterable[Any],
    *,
    workers: Optional[int] = 1,
    payload: Any = None,
    chunk_size: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
) -> List[Any]:
    """One-shot ordered map; ``pool`` reuses an existing WorkerPool."""
    if pool is not None:
        return pool.map(fn, items, chunk_size)
    with WorkerPool(workers=workers, payload=payload, chunk_size=chunk_size) as p:
        return p.map(fn, items)
