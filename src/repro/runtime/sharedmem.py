"""Zero-copy matrix transfer via POSIX shared memory.

:class:`SharedMatrix` places a rounds × modules float matrix (or any
ndarray) in a :class:`multiprocessing.shared_memory.SharedMemory`
segment so worker processes can map the same physical pages instead of
receiving a pickled copy.  Pickling a :class:`SharedMatrix` serialises
only the segment *name*, shape and dtype — a few dozen bytes — and the
unpickled handle lazily re-attaches on first :meth:`asarray` call.

Lifecycle contract
------------------
The process that calls :meth:`from_array` owns the segment and must
eventually call :meth:`unlink` (or use the handle as a context manager).
Attached handles (workers, unpickled copies) only :meth:`close`.  The
runtime always forks its workers, so every process shares the parent's
resource tracker and the owner's single unlink keeps the tracker's
books balanced.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np

__all__ = ["SharedMatrix"]


class SharedMatrix:
    """A picklable handle to an ndarray living in shared memory."""

    __slots__ = ("name", "shape", "dtype", "_shm", "_owner")

    def __init__(self, name: str, shape: Tuple[int, ...], dtype: str):
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = str(dtype)
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._owner = False

    @classmethod
    def from_array(cls, array: np.ndarray) -> "SharedMatrix":
        """Copy ``array`` into a fresh shared segment (owner handle)."""
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
        handle = cls(shm.name, array.shape, array.dtype.str)
        handle._shm = shm
        handle._owner = True
        if array.nbytes:
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
            view[...] = array
        return handle

    # -- pickling: ship the name, not the bytes ---------------------------

    def __getstate__(self):
        return (self.name, self.shape, self.dtype)

    def __setstate__(self, state):
        self.name, self.shape, self.dtype = state
        self._shm = None
        self._owner = False

    # -- access -----------------------------------------------------------

    def _attach(self) -> shared_memory.SharedMemory:
        # Attaching re-registers the segment with the resource tracker
        # on CPython < 3.13 (bpo-39959).  Under the fork start method —
        # the only one the runtime uses — every process shares the
        # parent's tracker, where registration is idempotent and the
        # owner's unlink unregisters exactly once, so no compensation
        # is needed (and unregistering here would corrupt the owner's
        # accounting).
        if self._shm is None:
            self._shm = shared_memory.SharedMemory(name=self.name)
        return self._shm

    def asarray(self) -> np.ndarray:
        """The shared ndarray (attaches on first call).

        The returned array aliases the segment: it stays valid only
        while this handle is open, and writes are visible to every
        process.  Callers that need a private copy must copy explicitly.
        """
        shm = self._attach()
        return np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=shm.buf)

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Unmap the segment from this process (idempotent)."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Destroy the segment (owner only; idempotent)."""
        if not self._owner:
            return
        try:
            shm = self._shm or shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError:  # already unlinked
            self._owner = False
            return
        self._shm = shm
        shm.unlink()
        self._owner = False

    def __enter__(self) -> "SharedMatrix":
        return self

    def __exit__(self, *exc) -> None:
        owner = self._owner
        if owner:
            self.unlink()
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self._owner else "handle"
        return (
            f"SharedMatrix({self.name!r}, shape={self.shape}, "
            f"dtype={self.dtype!r}, {role})"
        )
