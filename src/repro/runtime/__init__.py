"""Parallel execution runtime: process-pool fan-out for sweeps.

Everything above a single :meth:`FusionEngine.process_batch` call —
parameter searches, the Fig. 6/Fig. 7 experiment drivers, robustness
sweeps, multi-series fusion — is embarrassingly parallel.  This package
provides the one worker-pool abstraction they all share:

* :class:`WorkerPool` / :func:`parallel_map` — chunked process-pool
  scheduling with deterministic result ordering, fork-inherited
  payloads (closures and datasets reach workers without pickling) and
  graceful in-process fallback when ``workers=1`` or the platform has
  no ``fork``.
* :class:`SharedMatrix` — zero-copy distribution of rounds × modules
  float matrices through ``multiprocessing.shared_memory``.
* :func:`fuse_many` — fuse many independent series at once, one fresh
  engine per series, packed into a single shared segment.

The determinism guarantee is global: every parallel entry point returns
results bit-identical to its sequential path regardless of worker
count.  Seeded searches sample trial assignments from the sequential
RNG stream in the parent (seed-per-trial, never seed-per-worker), so a
sweep's trace is reproducible on any machine at any parallelism.
"""

from .fuse_many import fuse_many
from .pool import WorkerPool, fork_available, parallel_map, resolve_workers
from .sharedmem import SharedMatrix

__all__ = [
    "SharedMatrix",
    "WorkerPool",
    "fork_available",
    "fuse_many",
    "parallel_map",
    "resolve_workers",
]
