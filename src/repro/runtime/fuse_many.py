"""Fuse many independent series at once: the batch-of-batches API.

:func:`fuse_many` is the parallel companion of :func:`repro.fuse`: it
takes *many* rounds × modules matrices (different stacks, shelves,
tenants, replay windows ...) and fuses each through its own fresh
engine, fanning the work out over a :class:`~repro.runtime.pool.WorkerPool`.

All input matrices are packed into **one** shared-memory segment
(:class:`~repro.runtime.sharedmem.SharedMatrix`), so workers map the
float data instead of receiving pickled copies; only the per-series
:class:`~repro.fusion.batch.BatchResult` objects travel back.

Determinism: every series is fused through an independent engine (a
stateful :class:`Voter` instance is deep-copied per series), results
come back in input order, and the output is bit-identical for any
worker count — including ``workers=1``, which runs fully in-process.
"""

from __future__ import annotations

import copy
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import FusionError
from ..fusion.batch import BatchResult, fuse
from ..obs import RuntimeInstruments, get_default_registry
from ..voting.base import Voter
from .pool import WorkerPool, fork_available, resolve_workers
from .sharedmem import SharedMatrix

__all__ = ["fuse_many"]


def _normalise(matrices: Sequence[Any]) -> List[np.ndarray]:
    out: List[np.ndarray] = []
    for i, values in enumerate(matrices):
        matrix = np.asarray(values, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        if matrix.ndim != 2:
            raise FusionError(
                f"matrix {i}: expected 2-D (or 1-D single round), "
                f"got shape {matrix.shape}"
            )
        out.append(matrix)
    return out


def _fuse_one(spec: dict, matrix: np.ndarray) -> BatchResult:
    voter = spec["voter"]
    if isinstance(voter, Voter):
        # Each series gets an independent engine: never mutate the
        # caller's instance, and never leak history across series.
        voter = copy.deepcopy(voter)
    return fuse(
        matrix,
        voter,
        spec["modules"],
        params=spec["params"],
        quorum=spec["quorum"],
        fault_policy=spec["fault_policy"],
        roster=spec["roster"],
        diagnostics=spec["diagnostics"],
    )


def _fuse_entry(payload, index: int) -> BatchResult:
    shared, entries, spec = payload
    offset, shape = entries[index]
    flat = shared.asarray()
    matrix = flat[offset : offset + shape[0] * shape[1]].reshape(shape)
    return _fuse_one(spec, matrix)


def fuse_many(
    matrices: Sequence[Any],
    voter: Any = "avoc",
    modules: Optional[Sequence[str]] = None,
    *,
    params: Optional[Any] = None,
    quorum: Optional[Any] = None,
    fault_policy: Optional[Any] = None,
    roster: Optional[Sequence[str]] = None,
    diagnostics: bool = False,
    workers: Optional[int] = 1,
    chunk_size: Optional[int] = None,
    registry=None,
) -> List[BatchResult]:
    """Fuse every matrix in ``matrices`` through its own fresh engine.

    Args:
        matrices: a sequence of rounds × modules array-likes (a 1-D
            entry is one round).  Shapes may differ; when ``modules`` is
            given, every matrix must have ``len(modules)`` columns.
        voter: algorithm name, :class:`Voter` instance (deep-copied per
            series) or VDX ``VotingSpec`` — same contract as
            :func:`repro.fuse`.
        modules / params / quorum / fault_policy / roster / diagnostics:
            forwarded to :func:`repro.fuse` for every series.
        workers: worker processes (``1`` = in-process, ``None`` = one
            per CPU).  The result is identical for any value.
        chunk_size: series per scheduled task (default: auto).
        registry: metrics registry for the runtime instruments
            (default: the process-global registry from :mod:`repro.obs`).

    Returns:
        One :class:`BatchResult` per input matrix, in input order.

    Example:
        >>> from repro.runtime import fuse_many
        >>> a, b = [[1.0, 1.1, 0.9]], [[2.0, 2.2, 2.1], [2.0, 2.0, 1.9]]
        >>> [r.values.round(2).tolist() for r in fuse_many([a, b], "average")]
        [[1.0], [2.1, 1.97]]
    """
    mats = _normalise(matrices)
    if modules is not None:
        for i, matrix in enumerate(mats):
            if matrix.shape[1] != len(modules):
                raise FusionError(
                    f"matrix {i} has {matrix.shape[1]} columns but "
                    f"{len(modules)} module names were given"
                )
    if not mats:
        return []
    if registry is None:
        registry = get_default_registry()
    RuntimeInstruments(registry).series.inc(len(mats))
    spec = {
        "voter": voter,
        "modules": None if modules is None else list(modules),
        "params": params,
        "quorum": quorum,
        "fault_policy": fault_policy,
        "roster": None if roster is None else list(roster),
        "diagnostics": diagnostics,
    }

    if resolve_workers(workers) == 1 or not fork_available():
        return [_fuse_one(spec, matrix) for matrix in mats]

    # Pack every matrix into one shared segment: workers slice views.
    offsets: List[Tuple[int, Tuple[int, int]]] = []
    total = 0
    for matrix in mats:
        offsets.append((total, matrix.shape))
        total += matrix.size
    flat = np.empty(total, dtype=float)
    for (offset, shape), matrix in zip(offsets, mats):
        flat[offset : offset + matrix.size] = matrix.ravel()

    shared = SharedMatrix.from_array(flat)
    try:
        payload = (shared, offsets, spec)
        with WorkerPool(
            workers=workers, payload=payload, chunk_size=chunk_size,
            registry=registry,
        ) as pool:
            return pool.map(_fuse_entry, range(len(mats)))
    finally:
        shared.unlink()
        shared.close()
