"""Light sensor model (UC-1 substitute for the Phidget LUX1000).

The LUX1000 reports illuminance in lux up to ~100 klx with a small
per-unit calibration spread.  UC-1's figures are plotted in "Lumen
(×1000)", i.e. kilolumen units in the 17–20 band; the model works in
those units directly so generated datasets line up with Fig. 6.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .base import Sensor
from .signal import Signal


class LightSensor(Sensor):
    """A LUX1000-like illuminance sensor.

    Defaults reflect a decent ambient-light module: ±1 % calibration
    spread handled by the caller through ``gain``/``bias``, per-sample
    noise around 0.05 kilolumen, 0.001-kilolumen resolution, readings
    clipped to the physical [0, 100] kilolumen range.
    """

    def __init__(
        self,
        name: str,
        signal: Signal,
        gain: float = 1.0,
        bias: float = 0.0,
        noise_std: float = 0.05,
        resolution: float = 0.001,
        saturation: Optional[Tuple[float, float]] = (0.0, 100.0),
        dropout_probability: float = 0.0,
        seed: int = 0,
    ):
        super().__init__(
            name=name,
            signal=signal,
            gain=gain,
            bias=bias,
            noise_std=noise_std,
            resolution=resolution,
            saturation=saturation,
            dropout_probability=dropout_probability,
            seed=seed,
        )
