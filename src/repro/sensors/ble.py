"""BLE beacon RSSI model (UC-2 substitute for the physical beacons).

RSSI over distance follows the log-distance path-loss model used
throughout the BLE indoor-positioning literature::

    RSSI(d) = tx_power - 10 * n * log10(d / d0) + X_sigma

with ``tx_power`` the received power at the reference distance ``d0``
(1 m), ``n`` the path-loss exponent (~1.8–2.2 indoors with line of
sight) and ``X_sigma`` zero-mean Gaussian shadowing.  Real BLE links in
the paper's corridor additionally show per-beacon bias (antenna
orientation, stack position), heavy per-sample fading, and missing
values where a beacon was unreachable — all modelled here, which is
what makes UC-2 "a scenario with more anomalies and faults".
"""

from __future__ import annotations

import math
from typing import Callable

from ..exceptions import ConfigurationError
from .base import Sensor
from .signal import Signal


def rssi_at_distance(
    distance: float,
    tx_power: float = -59.0,
    path_loss_exponent: float = 2.0,
    reference_distance: float = 1.0,
) -> float:
    """Ideal (noise-free) RSSI in dBm at ``distance`` metres.

    Distances below ``reference_distance`` are clamped to it — the
    log-distance model is not defined closer than the reference point.
    """
    if distance < 0:
        raise ConfigurationError("distance must be non-negative")
    if reference_distance <= 0:
        raise ConfigurationError("reference_distance must be positive")
    d = max(distance, reference_distance)
    return tx_power - 10.0 * path_loss_exponent * math.log10(d / reference_distance)


class _DistanceSignal(Signal):
    """Adapter: a time-to-distance function becomes an RSSI signal."""

    def __init__(self, distance_fn: Callable[[float], float], tx_power, exponent):
        self.distance_fn = distance_fn
        self.tx_power = tx_power
        self.exponent = exponent

    def value(self, t: float) -> float:
        return rssi_at_distance(
            self.distance_fn(t),
            tx_power=self.tx_power,
            path_loss_exponent=self.exponent,
        )


class BleBeacon(Sensor):
    """One BLE beacon as observed by a moving receiver.

    Args:
        name: beacon identifier (e.g. ``"A3"``).
        distance_fn: receiver-to-beacon distance in metres as a
            function of time (robot kinematics live here).
        tx_power: calibrated RSSI at 1 m, dBm.
        path_loss_exponent: environment path-loss exponent.
        bias: per-beacon dBm offset (antenna/stack-position spread).
        noise_std: shadowing + fading standard deviation, dB.
        dropout_probability: chance of an unreachable-beacon gap.
        seed: RNG seed for this beacon's noise stream.
    """

    def __init__(
        self,
        name: str,
        distance_fn: Callable[[float], float],
        tx_power: float = -59.0,
        path_loss_exponent: float = 2.0,
        bias: float = 0.0,
        noise_std: float = 4.0,
        dropout_probability: float = 0.05,
        seed: int = 0,
    ):
        signal = _DistanceSignal(distance_fn, tx_power, path_loss_exponent)
        super().__init__(
            name=name,
            signal=signal,
            bias=bias,
            noise_std=noise_std,
            resolution=1.0,  # RSSI is reported in whole dBm
            saturation=(-110.0, -20.0),
            dropout_probability=dropout_probability,
            seed=seed,
        )
