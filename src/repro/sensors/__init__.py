"""Sensor substrate: ground-truth signals, sensor models, fault injectors.

The paper's evaluation hardware (Phidget LUX1000 light sensors, BLE
beacons) is substituted by statistical models that reproduce the same
per-round value structure the voting stack consumes: a shared physical
ground truth, per-sensor calibration bias, per-sample noise, and —
for the BLE use case — log-distance path loss with shadowing and
missing-value dropouts.
"""

from .signal import (
    CompositeSignal,
    ConstantSignal,
    DiurnalSignal,
    PiecewiseSignal,
    RampSignal,
    RandomWalkSignal,
    Signal,
)
from .base import Sensor
from .light import LightSensor
from .ble import BleBeacon, rssi_at_distance
from .faults import (
    DriftFault,
    DropoutFault,
    FaultySensor,
    NoiseFault,
    OffsetFault,
    SpikeFault,
    StuckAtFault,
)
from .array import SensorArray
from .calibration import Calibration, apply_calibration, estimate_calibration

__all__ = [
    "Calibration",
    "apply_calibration",
    "estimate_calibration",
    "Signal",
    "ConstantSignal",
    "RampSignal",
    "DiurnalSignal",
    "RandomWalkSignal",
    "CompositeSignal",
    "PiecewiseSignal",
    "Sensor",
    "LightSensor",
    "BleBeacon",
    "rssi_at_distance",
    "FaultySensor",
    "OffsetFault",
    "SpikeFault",
    "StuckAtFault",
    "DriftFault",
    "DropoutFault",
    "NoiseFault",
    "SensorArray",
]
