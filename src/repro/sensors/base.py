"""Sensor model base class.

A :class:`Sensor` transforms the ground truth into what a real module
would report: calibration gain/bias, additive Gaussian noise,
quantisation, saturation, and a dropout probability for missing values
(the UC-2 "beacon not reachable" scenario).  Sampling is driven by a
per-sensor seeded RNG, so whole datasets are reproducible.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..types import MISSING
from .signal import Signal


class Sensor:
    """A noisy, possibly unreliable observer of a ground-truth signal.

    Args:
        name: module identifier (e.g. ``"E1"``).
        signal: the ground truth this sensor observes.
        gain: multiplicative calibration error (1.0 = perfect).
        bias: additive calibration offset, in output units.
        noise_std: standard deviation of per-sample Gaussian noise.
        resolution: quantisation step (0 disables quantisation).
        saturation: (low, high) clipping range, or None.
        dropout_probability: chance a sample is missing entirely.
        seed: RNG seed for this sensor's noise/dropout stream.
    """

    def __init__(
        self,
        name: str,
        signal: Signal,
        gain: float = 1.0,
        bias: float = 0.0,
        noise_std: float = 0.0,
        resolution: float = 0.0,
        saturation: Optional[Tuple[float, float]] = None,
        dropout_probability: float = 0.0,
        seed: int = 0,
    ):
        if noise_std < 0:
            raise ConfigurationError("noise_std must be non-negative")
        if resolution < 0:
            raise ConfigurationError("resolution must be non-negative")
        if not 0.0 <= dropout_probability <= 1.0:
            raise ConfigurationError("dropout_probability must be in [0, 1]")
        if saturation is not None and saturation[0] > saturation[1]:
            raise ConfigurationError("saturation low bound exceeds high bound")
        self.name = name
        self.signal = signal
        self.gain = float(gain)
        self.bias = float(bias)
        self.noise_std = float(noise_std)
        self.resolution = float(resolution)
        self.saturation = saturation
        self.dropout_probability = float(dropout_probability)
        self._rng = np.random.default_rng(seed)
        self.samples_taken = 0
        self.samples_dropped = 0

    def _transduce(self, truth: float) -> float:
        """Subclass hook: physical quantity -> ideal sensor output."""
        return truth

    def sample(self, t: float) -> float:
        """One measurement at time ``t`` (``MISSING`` on dropout)."""
        self.samples_taken += 1
        if (
            self.dropout_probability > 0.0
            and self._rng.random() < self.dropout_probability
        ):
            self.samples_dropped += 1
            return MISSING
        value = self._transduce(self.signal.value(t))
        value = self.gain * value + self.bias
        if self.noise_std > 0.0:
            value += float(self._rng.normal(0.0, self.noise_std))
        if self.resolution > 0.0:
            value = round(value / self.resolution) * self.resolution
        if self.saturation is not None:
            value = min(max(value, self.saturation[0]), self.saturation[1])
        return float(value)

    def sample_many(self, times) -> np.ndarray:
        """Measurements at each time in ``times`` (NaN = missing)."""
        return np.asarray([self.sample(t) for t in times], dtype=float)
