"""Sensor arrays: groups of redundant modules sampled together.

An array is what a voting round reads from — UC-1's five light sensors
on the VINT hub, or one nine-beacon stack in UC-2.  Arrays produce
:class:`~repro.types.Round` objects or whole rounds × modules matrices.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..types import Round, is_missing
from .base import Sensor
from .faults import FaultySensor

AnySensor = Union[Sensor, FaultySensor]


class SensorArray:
    """A named group of redundant sensors sampled in lockstep.

    Args:
        sensors: the member sensors; names must be unique.
        name: optional array label (stack identifier in UC-2).
    """

    def __init__(self, sensors: Sequence[AnySensor], name: str = "array"):
        names = [s.name for s in sensors]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate sensor names in array: {names}")
        if not sensors:
            raise ConfigurationError("array needs at least one sensor")
        self.sensors = list(sensors)
        self.name = name

    @property
    def module_names(self) -> List[str]:
        return [s.name for s in self.sensors]

    def __len__(self) -> int:
        return len(self.sensors)

    def sample_round(self, number: int, t: float) -> Round:
        """One synchronous polling round at time ``t``."""
        mapping = {}
        for sensor in self.sensors:
            value = sensor.sample(t)
            mapping[sensor.name] = None if is_missing(value) else value
        return Round.from_mapping(number, mapping, timestamp=t)

    def sample_matrix(self, times: Sequence[float]) -> np.ndarray:
        """A rounds × modules matrix over ``times`` (NaN = missing)."""
        rows = []
        for t in times:
            rows.append([sensor.sample(t) for sensor in self.sensors])
        return np.asarray(rows, dtype=float)

    def replace(self, name: str, replacement: AnySensor) -> "SensorArray":
        """A new array with the named sensor swapped (fault injection)."""
        if name not in self.module_names:
            raise ConfigurationError(f"no sensor named {name!r} in array")
        sensors = [
            replacement if sensor.name == name else sensor for sensor in self.sensors
        ]
        return SensorArray(sensors, name=self.name)
