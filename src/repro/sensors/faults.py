"""Fault injection for sensors.

Faults wrap a healthy :class:`~repro.sensors.base.Sensor` and corrupt
its output over a round/time window.  The UC-1 error-injection
experiment uses :class:`OffsetFault` (the "+6 (kilo)lumen" skew on E4);
the other fault types cover the wider failure taxonomy used in the test
suite and the ablation benchmarks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..types import MISSING, is_missing
from .base import Sensor


class FaultySensor:
    """Base wrapper: delegates to the wrapped sensor, corrupts in a window.

    Args:
        sensor: the healthy sensor to wrap.
        start: first time (inclusive, seconds) the fault is active.
        end: first time the fault is no longer active (None = forever).
    """

    def __init__(self, sensor: Sensor, start: float = 0.0, end: Optional[float] = None):
        if end is not None and end < start:
            raise ConfigurationError("fault end precedes start")
        self.sensor = sensor
        self.start = float(start)
        self.end = end

    @property
    def name(self) -> str:
        return self.sensor.name

    def active(self, t: float) -> bool:
        if t < self.start:
            return False
        return self.end is None or t < self.end

    def _corrupt(self, t: float, value: float) -> float:
        """Subclass hook: transform an in-window, non-missing value."""
        return value

    def sample(self, t: float) -> float:
        value = self.sensor.sample(t)
        if not self.active(t) or is_missing(value):
            return value
        return self._corrupt(t, value)

    def sample_many(self, times) -> np.ndarray:
        return np.asarray([self.sample(t) for t in times], dtype=float)


class OffsetFault(FaultySensor):
    """Constant additive skew — the UC-1 injected fault."""

    def __init__(self, sensor, offset: float, start: float = 0.0, end=None):
        super().__init__(sensor, start, end)
        self.offset = float(offset)

    def _corrupt(self, t: float, value: float) -> float:
        return value + self.offset


class StuckAtFault(FaultySensor):
    """Output frozen at a fixed value (dead transducer, stale cache)."""

    def __init__(self, sensor, stuck_value: float, start: float = 0.0, end=None):
        super().__init__(sensor, start, end)
        self.stuck_value = float(stuck_value)

    def _corrupt(self, t: float, value: float) -> float:
        return self.stuck_value


class DriftFault(FaultySensor):
    """Linearly growing offset ``rate * (t - start)`` (calibration drift)."""

    def __init__(self, sensor, rate: float, start: float = 0.0, end=None):
        super().__init__(sensor, start, end)
        self.rate = float(rate)

    def _corrupt(self, t: float, value: float) -> float:
        return value + self.rate * (t - self.start)


class SpikeFault(FaultySensor):
    """Random large spikes with a given per-sample probability."""

    def __init__(
        self,
        sensor,
        magnitude: float,
        probability: float = 0.05,
        start: float = 0.0,
        end=None,
        seed: int = 0,
    ):
        super().__init__(sensor, start, end)
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError("spike probability must be in [0, 1]")
        self.magnitude = float(magnitude)
        self.probability = float(probability)
        self._rng = np.random.default_rng(seed)

    def _corrupt(self, t: float, value: float) -> float:
        if self._rng.random() < self.probability:
            sign = 1.0 if self._rng.random() < 0.5 else -1.0
            return value + sign * self.magnitude
        return value


class NoiseFault(FaultySensor):
    """Extra zero-mean Gaussian noise (degraded signal conditions)."""

    def __init__(self, sensor, noise_std: float, start: float = 0.0, end=None, seed: int = 0):
        super().__init__(sensor, start, end)
        if noise_std < 0:
            raise ConfigurationError("noise_std must be non-negative")
        self.noise_std = float(noise_std)
        self._rng = np.random.default_rng(seed)

    def _corrupt(self, t: float, value: float) -> float:
        return value + float(self._rng.normal(0.0, self.noise_std))


class DropoutFault(FaultySensor):
    """Samples go missing with the given probability (link loss)."""

    def __init__(self, sensor, probability: float, start: float = 0.0, end=None, seed: int = 0):
        super().__init__(sensor, start, end)
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError("dropout probability must be in [0, 1]")
        self.probability = float(probability)
        self._rng = np.random.default_rng(seed)

    def _corrupt(self, t: float, value: float) -> float:
        if self._rng.random() < self.probability:
            return MISSING
        return value
