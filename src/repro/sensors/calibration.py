"""Sensor self-calibration against internal ground truth.

The paper's premise is that voting yields an *internal ground truth*
"upon which critical decision-making can be based".  One such decision
is recalibration: once a trustworthy fused output exists, each module's
gain and bias can be estimated by regressing its raw readings against
the fused series — no external reference instrument needed.

:func:`estimate_calibration` fits ``reading ≈ gain * truth + bias`` per
module (ordinary least squares, NaN-aware); :func:`apply_calibration`
inverts the fit to produce a corrected dataset.  Calibrating on the
voter's own output and re-voting shrinks the residual spread — the
closed loop demonstrated in ``benchmarks/test_ablations.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..datasets.dataset import Dataset


@dataclass(frozen=True)
class Calibration:
    """Fitted affine model of one module: reading = gain·truth + bias."""

    module: str
    gain: float
    bias: float
    residual_std: float
    samples: int

    def correct(self, reading: float) -> float:
        """Invert the model: estimate the truth behind a reading."""
        return (reading - self.bias) / self.gain


def estimate_calibration(
    dataset: Dataset,
    reference: Sequence[float],
    min_samples: int = 10,
) -> Dict[str, Calibration]:
    """Fit per-module affine calibrations against a reference series.

    Args:
        dataset: raw readings (rounds × modules, NaN = missing).
        reference: the trusted series (typically the fused output).
        min_samples: minimum usable (reading, reference) pairs; modules
            with fewer get the identity calibration.

    Returns:
        One :class:`Calibration` per module.

    Raises:
        ValueError: when the reference length mismatches the dataset,
            or the reference is constant (gain is unidentifiable).
    """
    ref = np.asarray(reference, dtype=float)
    if ref.shape[0] != dataset.n_rounds:
        raise ValueError("reference length does not match dataset rounds")
    calibrations: Dict[str, Calibration] = {}
    for module in dataset.modules:
        column = dataset.column(module)
        mask = ~np.isnan(column) & ~np.isnan(ref)
        x = ref[mask]
        y = column[mask]
        if x.size < min_samples or float(x.std()) == 0.0:
            calibrations[module] = Calibration(
                module=module, gain=1.0, bias=0.0,
                residual_std=float("nan"), samples=int(x.size),
            )
            continue
        # Candidate 1: bias-only (gain pinned to 1).  Candidate 2: full
        # affine fit.  With weak reference excitation the affine slope
        # is not identifiable — it regresses toward noise — so the
        # extra parameter must clearly pay for itself in residual
        # reduction to be accepted (a parsimony guard).
        bias_only = float((y - x).mean())
        residual_bias_only = y - x - bias_only
        gain, bias = np.polyfit(x, y, 1)
        if abs(gain) < 1e-9:
            gain = 1e-9  # degenerate fit; keep correct() defined
        residual_affine = y - (gain * x + bias)
        if residual_affine.std() < 0.8 * residual_bias_only.std():
            calibrations[module] = Calibration(
                module=module,
                gain=float(gain),
                bias=float(bias),
                residual_std=float(residual_affine.std()),
                samples=int(x.size),
            )
        else:
            calibrations[module] = Calibration(
                module=module,
                gain=1.0,
                bias=bias_only,
                residual_std=float(residual_bias_only.std()),
                samples=int(x.size),
            )
    return calibrations


def apply_calibration(
    dataset: Dataset, calibrations: Dict[str, Calibration]
) -> Dataset:
    """Correct every reading with its module's fitted calibration.

    Modules without a calibration pass through unchanged; missing
    values stay missing.
    """
    matrix = dataset.matrix.copy()
    for index, module in enumerate(dataset.modules):
        calibration = calibrations.get(module)
        if calibration is None:
            continue
        column = matrix[:, index]
        present = ~np.isnan(column)
        column[present] = (column[present] - calibration.bias) / calibration.gain
        matrix[:, index] = column
    return dataset.with_matrix(matrix, suffix="calibrated")
