"""Ground-truth signal generators.

A :class:`Signal` maps time (seconds) to the true physical quantity the
redundant sensors observe.  UC-1 uses a slowly varying sunlight level
(diurnal arc plus a correlated random walk for passing clouds); tests
use the simpler shapes.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError


class Signal(abc.ABC):
    """Deterministic (given a seed) mapping from time to ground truth."""

    @abc.abstractmethod
    def value(self, t: float) -> float:
        """Ground-truth value at time ``t`` seconds."""

    def sample(self, times: Sequence[float]) -> np.ndarray:
        """Vectorised convenience: ground truth at each time."""
        return np.asarray([self.value(t) for t in times], dtype=float)


class ConstantSignal(Signal):
    """A fixed level."""

    def __init__(self, level: float):
        self.level = float(level)

    def value(self, t: float) -> float:
        return self.level


class RampSignal(Signal):
    """Linear ramp ``start + rate * t``."""

    def __init__(self, start: float, rate: float):
        self.start = float(start)
        self.rate = float(rate)

    def value(self, t: float) -> float:
        return self.start + self.rate * t


class DiurnalSignal(Signal):
    """A slow sinusoidal arc, e.g. sunlight over part of a day.

    ``base + amplitude * sin(2π (t + phase) / period)``.
    """

    def __init__(
        self, base: float, amplitude: float, period: float, phase: float = 0.0
    ):
        if period <= 0:
            raise ConfigurationError("period must be positive")
        self.base = float(base)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def value(self, t: float) -> float:
        return self.base + self.amplitude * math.sin(
            2.0 * math.pi * (t + self.phase) / self.period
        )


class RandomWalkSignal(Signal):
    """Seeded random walk sampled on a fixed grid, interpolated between.

    Models correlated medium-frequency variation (clouds, reflections)
    that all redundant sensors see together.  Deterministic per seed:
    repeated queries return identical values.
    """

    def __init__(
        self,
        step_std: float,
        step_interval: float = 1.0,
        seed: int = 0,
        clamp: Optional[Tuple[float, float]] = None,
    ):
        if step_interval <= 0:
            raise ConfigurationError("step_interval must be positive")
        if step_std < 0:
            raise ConfigurationError("step_std must be non-negative")
        self.step_std = float(step_std)
        self.step_interval = float(step_interval)
        self.seed = seed
        self.clamp = clamp
        self._levels: List[float] = [0.0]
        self._rng = np.random.default_rng(seed)

    def _extend_to(self, index: int) -> None:
        while len(self._levels) <= index:
            step = float(self._rng.normal(0.0, self.step_std))
            level = self._levels[-1] + step
            if self.clamp is not None:
                level = min(max(level, self.clamp[0]), self.clamp[1])
            self._levels.append(level)

    def value(self, t: float) -> float:
        if t < 0:
            raise ConfigurationError("random walk is defined for t >= 0")
        position = t / self.step_interval
        low = int(math.floor(position))
        self._extend_to(low + 1)
        frac = position - low
        return self._levels[low] * (1.0 - frac) + self._levels[low + 1] * frac


class CompositeSignal(Signal):
    """Sum of component signals."""

    def __init__(self, components: Sequence[Signal]):
        if not components:
            raise ConfigurationError("composite needs at least one component")
        self.components = list(components)

    def value(self, t: float) -> float:
        return sum(c.value(t) for c in self.components)


class PiecewiseSignal(Signal):
    """Switch between signals at given boundaries.

    ``segments`` maps segment start time to the signal active from that
    time; the earliest start must be 0.
    """

    def __init__(self, segments: Dict[float, Signal]):
        if not segments:
            raise ConfigurationError("piecewise needs at least one segment")
        self.boundaries = sorted(segments)
        if self.boundaries[0] != 0.0:
            raise ConfigurationError("first segment must start at t=0")
        self.segments = dict(segments)

    def value(self, t: float) -> float:
        active = self.boundaries[0]
        for start in self.boundaries:
            if start <= t:
                active = start
            else:
                break
        return self.segments[active].value(t)
