"""JSONL append-log history store.

Each ``save`` appends one JSON line containing the full record snapshot;
``load`` replays the log and returns the last snapshot.  Appending keeps
writes cheap and crash-safe (a torn final line is ignored on replay),
and :meth:`JsonlHistoryStore.compact` rewrites the log down to a single
line when it grows past a threshold.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from ..exceptions import HistoryStoreError
from ..util import atomic_write
from .store import HistoryStore


class JsonlHistoryStore(HistoryStore):
    """Durable history store backed by a JSON-lines append log.

    Args:
        path: log file location (created on first save).
        compact_after: automatically compact once the log holds this
            many snapshots (``None`` disables auto-compaction).
    """

    def __init__(
        self, path: Union[str, Path], compact_after: Optional[int] = 1000
    ):
        if compact_after is not None and compact_after < 1:
            raise HistoryStoreError("compact_after must be >= 1 or None")
        self.path = Path(path)
        self.compact_after = compact_after
        self._appends_since_compact = 0

    def load(self) -> Dict[str, float]:
        if not self.path.exists():
            return {}
        last: Dict[str, float] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        snapshot = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn trailing write; keep previous snapshot
                    if isinstance(snapshot, dict):
                        last = {str(k): float(v) for k, v in snapshot.items()}
        except OSError as exc:
            raise HistoryStoreError(f"cannot read history log {self.path}: {exc}")
        return last

    def save(self, records: Mapping[str, float]) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(dict(records), sort_keys=True) + "\n")
        except OSError as exc:
            raise HistoryStoreError(f"cannot append to history log {self.path}: {exc}")
        self._appends_since_compact += 1
        if (
            self.compact_after is not None
            and self._appends_since_compact >= self.compact_after
        ):
            self.compact()

    def clear(self) -> None:
        try:
            if self.path.exists():
                os.remove(self.path)
        except OSError as exc:
            raise HistoryStoreError(f"cannot remove history log {self.path}: {exc}")
        self._appends_since_compact = 0

    def compact(self) -> None:
        """Rewrite the log as a single line holding the latest snapshot.

        The rewrite goes through :func:`repro.util.atomic_write`
        (sibling mkstemp + ``os.replace``), so a crash mid-compaction
        leaves either the old multi-line log or the new one-line log —
        never a truncated file, and never a stale ``.tmp`` that a
        concurrent compaction would trip over.
        """
        snapshot = self.load()
        try:
            atomic_write(self.path, json.dumps(snapshot, sort_keys=True) + "\n")
        except OSError as exc:
            raise HistoryStoreError(f"cannot compact history log {self.path}: {exc}")
        self._appends_since_compact = 0

    def snapshot_count(self) -> int:
        """Number of snapshots currently in the log (for tests/metrics)."""
        if not self.path.exists():
            return 0
        with open(self.path, "r", encoding="utf-8") as fh:
            return sum(1 for line in fh if line.strip())
