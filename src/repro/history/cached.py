"""Write-behind caching for history stores.

§7 names datastore reads and writes as the bottleneck of the
1-millisecond history-aware round.  A write-behind cache is the classic
fix: reads come from memory, and the backing store is only touched
every ``flush_every`` updates (or on explicit flush/close).  The
trade-off is bounded staleness — a crash loses at most the unflushed
rounds of record movement, which history records tolerate by design
(they re-converge from subsequent agreement).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..exceptions import HistoryStoreError
from .store import HistoryStore


class WriteBehindStore(HistoryStore):
    """Decorator adding a write-behind cache to any history store.

    Args:
        backing: the durable store to decorate.
        flush_every: persist after this many ``save`` calls (1 =
            write-through).
    """

    def __init__(self, backing: HistoryStore, flush_every: int = 16):
        if flush_every < 1:
            raise HistoryStoreError("flush_every must be >= 1")
        self.backing = backing
        self.flush_every = flush_every
        self._cache: Optional[Dict[str, float]] = None
        self._dirty_saves = 0
        self.flushes = 0

    def load(self) -> Dict[str, float]:
        if self._cache is None:
            self._cache = self.backing.load()
        return dict(self._cache)

    def save(self, records: Mapping[str, float]) -> None:
        self._cache = dict(records)
        self._dirty_saves += 1
        if self._dirty_saves >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Persist the cached snapshot to the backing store now."""
        if self._cache is not None and self._dirty_saves > 0:
            self.backing.save(self._cache)
            self.flushes += 1
        self._dirty_saves = 0

    def clear(self) -> None:
        self._cache = {}
        self._dirty_saves = 0
        self.backing.clear()

    @property
    def pending_saves(self) -> int:
        """Unflushed save calls (lost on crash; bounded by flush_every)."""
        return self._dirty_saves

    def __enter__(self) -> "WriteBehindStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.flush()
