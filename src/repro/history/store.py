"""History store interface.

A store persists the mapping ``{module_name: record}`` between voting
rounds (and across process restarts for durable backends).  Stores are
deliberately tiny: :class:`~repro.voting.history.HistoryRecords` calls
``load`` once at attach time and ``save`` after every update round,
mirroring the read/update/write cycle of the paper's deployment.
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping, Optional, Tuple


class HistoryStore(abc.ABC):
    """Abstract persistence backend for history records."""

    @abc.abstractmethod
    def load(self) -> Dict[str, float]:
        """Return all persisted records (empty dict when none exist)."""

    @abc.abstractmethod
    def save(self, records: Mapping[str, float]) -> None:
        """Persist the full current record mapping."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Remove every persisted record."""


#: Per-series state as persisted by a :class:`SeriesStateStore`: the
#: record mapping plus the update-round counter (the AVOC bootstrap
#: trigger keys on ``update_count == 0``, so rehydrating records without
#: the counter is not bit-identical).
SeriesState = Tuple[Dict[str, float], int]


class SeriesStateStore(abc.ABC):
    """Abstract bulk store holding the state of *many* series.

    This is the storage tier behind
    :class:`~repro.history.tiered.TieredHistoryStore`: one directory /
    database / address space for an entire shard's series population,
    instead of one :class:`HistoryStore` object-per-series.  A shard
    hosting 10\\ :sup:`6` series keeps only its hot set resident and
    reads the rest through this interface on demand.
    """

    @abc.abstractmethod
    def read(self, series: str) -> Optional[SeriesState]:
        """The persisted ``(records, updates)`` for ``series``, or None."""

    @abc.abstractmethod
    def write(self, series: str, records: Mapping[str, float], updates: int) -> None:
        """Persist the full state of one series."""

    @abc.abstractmethod
    def delete(self, series: str) -> None:
        """Forget one series (no-op when unknown)."""

    @abc.abstractmethod
    def series(self) -> Tuple[str, ...]:
        """Every series key with persisted state."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Forget every series."""

    def compact(self) -> None:
        """Reclaim dead storage (optional; default no-op)."""

    def close(self) -> None:
        """Release file handles / connections (optional; default no-op)."""

    def __contains__(self, series: str) -> bool:
        return self.read(series) is not None

    def __len__(self) -> int:
        return len(self.series())
