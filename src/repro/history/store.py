"""History store interface.

A store persists the mapping ``{module_name: record}`` between voting
rounds (and across process restarts for durable backends).  Stores are
deliberately tiny: :class:`~repro.voting.history.HistoryRecords` calls
``load`` once at attach time and ``save`` after every update round,
mirroring the read/update/write cycle of the paper's deployment.
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping


class HistoryStore(abc.ABC):
    """Abstract persistence backend for history records."""

    @abc.abstractmethod
    def load(self) -> Dict[str, float]:
        """Return all persisted records (empty dict when none exist)."""

    @abc.abstractmethod
    def save(self, records: Mapping[str, float]) -> None:
        """Persist the full current record mapping."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Remove every persisted record."""
