"""Persistent backends for per-module history records.

The paper's deployment keeps history records in a datastore and notes
that "datastore reads and writes [are] the bottleneck" of the
1-millisecond history-aware round (§7).  This package provides two
interfaces and their backends:

* :class:`HistoryStore` — one series' records (in-memory, JSONL log,
  SQLite, write-behind cache);
* :class:`SeriesStateStore` — bulk state for an entire shard's series
  population (memory dict, JSONL directory, single SQLite database,
  packed mmap segments), fronted by :class:`TieredHistoryStore`'s
  LRU-bounded hot set for million-series shards.
"""

from .store import HistoryStore, SeriesState, SeriesStateStore
from .memory import MemoryHistoryStore
from .file import JsonlHistoryStore
from .sqlite import SqliteHistoryStore
from .cached import WriteBehindStore
from .bulk import (
    JsonlStateStore,
    MemoryStateStore,
    SqliteStateStore,
    series_filename,
)
from .packed import PackedHistoryStore, PackedSeriesStore
from .tiered import DEFAULT_HOT_SERIES, TieredHistoryStore, TieredSeriesStore

__all__ = [
    "DEFAULT_HOT_SERIES",
    "HistoryStore",
    "JsonlHistoryStore",
    "JsonlStateStore",
    "MemoryHistoryStore",
    "MemoryStateStore",
    "PackedHistoryStore",
    "PackedSeriesStore",
    "SeriesState",
    "SeriesStateStore",
    "SqliteHistoryStore",
    "SqliteStateStore",
    "TieredHistoryStore",
    "TieredSeriesStore",
    "WriteBehindStore",
    "series_filename",
]
