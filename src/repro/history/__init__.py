"""Persistent backends for per-module history records.

The paper's deployment keeps history records in a datastore and notes
that "datastore reads and writes [are] the bottleneck" of the
1-millisecond history-aware round (§7).  This package provides the
store interface plus two backends: a process-local in-memory store and
a JSONL append-log file store with snapshot/replay semantics.
"""

from .store import HistoryStore
from .memory import MemoryHistoryStore
from .file import JsonlHistoryStore
from .sqlite import SqliteHistoryStore
from .cached import WriteBehindStore

__all__ = [
    "HistoryStore",
    "MemoryHistoryStore",
    "JsonlHistoryStore",
    "SqliteHistoryStore",
    "WriteBehindStore",
]
