"""Non-packed :class:`SeriesStateStore` backings.

These adapt the existing single-series backends to the bulk
(many-series) interface consumed by
:class:`~repro.history.tiered.TieredHistoryStore`, so the cluster's
``--store`` knob can choose between storage tiers without the shard
code caring:

* :class:`MemoryStateStore` — a dict; state survives engine eviction
  but dies with the process.
* :class:`JsonlStateStore` — the legacy one-JSONL-log-per-series
  layout (same file names the shards always used, so pre-existing
  history directories keep working).  The JSONL line format cannot
  carry the update counter; rehydrated series report ``updates == 0``,
  exactly as a restarted shard always has.
* :class:`SqliteStateStore` — one SQLite database for the whole shard
  with per-series record rows and an update-counter table.
"""

from __future__ import annotations

import hashlib
import re
import sqlite3
import threading
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

from ..exceptions import HistoryStoreError
from .file import JsonlHistoryStore
from .store import SeriesState, SeriesStateStore

__all__ = [
    "JsonlStateStore",
    "MemoryStateStore",
    "SqliteStateStore",
    "series_filename",
]


def series_filename(series: str) -> str:
    """A filesystem-safe, collision-free log name for a series key."""
    slug = re.sub(r"[^A-Za-z0-9_.-]", "_", series)[:48]
    digest = hashlib.blake2b(series.encode("utf-8"), digest_size=6).hexdigest()
    return f"{slug}-{digest}.jsonl"


class MemoryStateStore(SeriesStateStore):
    """Dict-backed bulk store; contents live and die with the process."""

    def __init__(self) -> None:
        self._states: Dict[str, SeriesState] = {}
        self._lock = threading.Lock()

    def read(self, series: str) -> Optional[SeriesState]:
        with self._lock:
            state = self._states.get(series)
            if state is None:
                return None
            records, updates = state
            return dict(records), updates

    def write(self, series: str, records: Mapping[str, float], updates: int) -> None:
        with self._lock:
            self._states[series] = (dict(records), int(updates))

    def delete(self, series: str) -> None:
        with self._lock:
            self._states.pop(series, None)

    def series(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._states))

    def clear(self) -> None:
        with self._lock:
            self._states.clear()


class JsonlStateStore(SeriesStateStore):
    """Bulk adapter over the legacy per-series JSONL append logs.

    ``series()`` only enumerates series written through this process —
    the hashed file names cannot be inverted — so callers that need
    cold-start enumeration (the shard server) keep their own series
    index, as they always have.  ``read`` works cold for any series.
    """

    def __init__(
        self, directory: Union[str, Path], compact_after: Optional[int] = 1000
    ):
        self.directory = Path(directory)
        self.compact_after = compact_after
        self._stores: Dict[str, JsonlHistoryStore] = {}
        self._lock = threading.Lock()

    def _store(self, series: str, cache: bool = True) -> JsonlHistoryStore:
        with self._lock:
            store = self._stores.get(series)
            if store is None:
                store = JsonlHistoryStore(
                    self.directory / series_filename(series),
                    compact_after=self.compact_after,
                )
                if cache:
                    self._stores[series] = store
            return store

    def read(self, series: str) -> Optional[SeriesState]:
        # Probing reads must not cache: a miss would otherwise register
        # a phantom series that ``series()`` then enumerates.
        records = self._store(series, cache=False).load()
        if not records:
            return None
        return records, 0  # the line format has no update counter

    def write(self, series: str, records: Mapping[str, float], updates: int) -> None:
        self._store(series).save(records)

    def delete(self, series: str) -> None:
        self._store(series).clear()
        with self._lock:
            self._stores.pop(series, None)

    def series(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._stores))

    def compact(self) -> None:
        with self._lock:
            stores = list(self._stores.values())
        for store in stores:
            store.compact()

    def clear(self) -> None:
        with self._lock:
            stores, self._stores = list(self._stores.values()), {}
        for store in stores:
            store.clear()


_SCHEMA = """
CREATE TABLE IF NOT EXISTS series_records (
    series TEXT NOT NULL,
    module TEXT NOT NULL,
    record REAL NOT NULL,
    PRIMARY KEY (series, module)
);
CREATE TABLE IF NOT EXISTS series_meta (
    series TEXT PRIMARY KEY,
    updates INTEGER NOT NULL
);
"""


class SqliteStateStore(SeriesStateStore):
    """One SQLite database holding every series of a shard."""

    def __init__(
        self, path: Union[str, Path], synchronous: str = "NORMAL"
    ):
        if synchronous.upper() not in ("OFF", "NORMAL", "FULL"):
            raise HistoryStoreError(
                f"synchronous must be OFF/NORMAL/FULL, got {synchronous!r}"
            )
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        try:
            self._connection = sqlite3.connect(
                str(self.path), check_same_thread=False
            )
            self._connection.execute(f"PRAGMA synchronous={synchronous.upper()}")
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.executescript(_SCHEMA)
            self._connection.commit()
        except sqlite3.Error as exc:
            raise HistoryStoreError(f"cannot open series database: {exc}")

    def read(self, series: str) -> Optional[SeriesState]:
        with self._lock:
            try:
                meta = self._connection.execute(
                    "SELECT updates FROM series_meta WHERE series=?", (series,)
                ).fetchone()
                rows = self._connection.execute(
                    "SELECT module, record FROM series_records WHERE series=?",
                    (series,),
                ).fetchall()
            except sqlite3.Error as exc:
                raise HistoryStoreError(f"cannot read series state: {exc}")
        if meta is None and not rows:
            return None
        records = {module: float(record) for module, record in rows}
        return records, int(meta[0]) if meta is not None else 0

    def write(self, series: str, records: Mapping[str, float], updates: int) -> None:
        with self._lock:
            try:
                self._connection.execute(
                    "DELETE FROM series_records WHERE series=?", (series,)
                )
                self._connection.executemany(
                    "INSERT INTO series_records(series, module, record) "
                    "VALUES(?, ?, ?)",
                    [(series, m, float(r)) for m, r in records.items()],
                )
                self._connection.execute(
                    "INSERT INTO series_meta(series, updates) VALUES(?, ?) "
                    "ON CONFLICT(series) DO UPDATE SET updates=excluded.updates",
                    (series, int(updates)),
                )
                self._connection.commit()
            except sqlite3.Error as exc:
                raise HistoryStoreError(f"cannot persist series state: {exc}")

    def delete(self, series: str) -> None:
        with self._lock:
            try:
                self._connection.execute(
                    "DELETE FROM series_records WHERE series=?", (series,)
                )
                self._connection.execute(
                    "DELETE FROM series_meta WHERE series=?", (series,)
                )
                self._connection.commit()
            except sqlite3.Error as exc:
                raise HistoryStoreError(f"cannot delete series state: {exc}")

    def series(self) -> Tuple[str, ...]:
        with self._lock:
            try:
                rows = self._connection.execute(
                    "SELECT series FROM series_meta "
                    "UNION SELECT DISTINCT series FROM series_records"
                ).fetchall()
            except sqlite3.Error as exc:
                raise HistoryStoreError(f"cannot list series: {exc}")
        return tuple(sorted(row[0] for row in rows))

    def compact(self) -> None:
        with self._lock:
            try:
                self._connection.commit()
                self._connection.execute("VACUUM")
            except sqlite3.Error:
                pass  # VACUUM is advisory; WAL checkpoints still apply

    def clear(self) -> None:
        with self._lock:
            try:
                self._connection.execute("DELETE FROM series_records")
                self._connection.execute("DELETE FROM series_meta")
                self._connection.commit()
            except sqlite3.Error as exc:
                raise HistoryStoreError(f"cannot clear series state: {exc}")

    def close(self) -> None:
        with self._lock:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass
