"""LRU-tiered front for a bulk :class:`SeriesStateStore`.

A shard hosting a million series cannot keep a million live
:class:`~repro.voting.history.HistoryRecords` (or a million open JSONL
logs) resident.  :class:`TieredHistoryStore` splits the population into
two tiers:

* a **hot set** — an LRU-ordered dict of at most ``hot_series`` states,
  served without touching storage;
* the **backing** :class:`~repro.history.store.SeriesStateStore`
  (packed segments, SQLite, JSONL directory, memory) holding everyone.

Writes land in the hot set and are flushed through to the backing
every ``flush_every`` saves per series (default 1 = write-through, the
same per-round durability the shards have always had).  Evicted series
are written back if dirty and rehydrate transparently on the next
read, bit-identically — state is ``(records, update_counter)``, so a
rehydrated engine is indistinguishable from one that never left memory.

A :class:`TieredSeriesStore` view (from :meth:`store_for`) adapts one
series to the single-series ``HistoryStore`` protocol plus the
extended ``load_state``/``save_state`` pair, which is what
``HistoryRecords`` attaches to.

An optional maintenance thread periodically compacts the backing store
(reclaiming dead packed-segment space) and runs a caller-supplied hook
— the shard server uses it to compact the voted-rounds watermark log
in the background instead of on the vote path.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..exceptions import HistoryStoreError
from ..obs import StoreInstruments, get_default_registry
from .store import HistoryStore, SeriesState, SeriesStateStore

__all__ = ["TieredHistoryStore", "TieredSeriesStore", "DEFAULT_HOT_SERIES"]

#: Default hot-set capacity. Sized so a shard's resident state stays in
#: the tens of MB even with wide module rosters; ``avoc cluster`` exposes
#: it as ``--max-resident-series``.
DEFAULT_HOT_SERIES = 10_000


class _HotEntry:
    __slots__ = ("records", "updates", "dirty", "saves_since_flush")

    def __init__(self, records: Dict[str, float], updates: int, dirty: bool):
        self.records = records
        self.updates = updates
        self.dirty = dirty
        self.saves_since_flush = 0


class TieredHistoryStore:
    """LRU-bounded hot set of series states over a bulk backing store.

    Args:
        backing: the durable (or memory) bulk store holding every series.
        hot_series: hot-set capacity; least-recently-used series beyond
            it are written back (if dirty) and evicted.  ``None``
            disables eviction (everything stays resident).
        flush_every: write a series through to the backing every this
            many saves.  1 (default) is write-through — every update
            round is durable, matching the historical per-round JSONL
            append.  Larger values batch writes and rely on eviction /
            :meth:`flush` / :meth:`close` for durability.
        registry: metrics registry for :class:`StoreInstruments`
            (defaults to the process-global registry).
        maintenance_interval: when set, a daemon thread calls
            :meth:`compact` (and ``maintenance_hook``, if any) every
            this many seconds.
        maintenance_hook: extra callable run by the maintenance thread
            after each compaction pass; exceptions are swallowed.
    """

    def __init__(
        self,
        backing: SeriesStateStore,
        hot_series: Optional[int] = DEFAULT_HOT_SERIES,
        flush_every: int = 1,
        registry=None,
        maintenance_interval: Optional[float] = None,
        maintenance_hook: Optional[Callable[[], None]] = None,
    ):
        if hot_series is not None and hot_series < 1:
            raise HistoryStoreError(
                f"hot_series must be >= 1 or None, got {hot_series}"
            )
        if flush_every < 1:
            raise HistoryStoreError(f"flush_every must be >= 1, got {flush_every}")
        if maintenance_interval is not None and maintenance_interval <= 0:
            raise HistoryStoreError("maintenance_interval must be positive")
        self.backing = backing
        self.hot_series = hot_series
        self.flush_every = flush_every
        self._hot: "OrderedDict[str, _HotEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self._closed = False
        self.evictions = 0
        self.rehydrations = 0
        self.writebacks = 0
        self._obs = StoreInstruments(
            registry if registry is not None else get_default_registry(), self
        )
        self._maintenance_hook = maintenance_hook
        self._maintenance_stop = threading.Event()
        self._maintenance_thread: Optional[threading.Thread] = None
        if maintenance_interval is not None:
            self._maintenance_thread = threading.Thread(
                target=self._maintenance_loop,
                args=(maintenance_interval,),
                name="history-maintenance",
                daemon=True,
            )
            self._maintenance_thread.start()

    # -- state access -----------------------------------------------------

    def get_state(self, series: str) -> Optional[SeriesState]:
        """The current ``(records, updates)`` for ``series``, or None.

        Serves from the hot set when resident (marking the series most
        recently used); otherwise rehydrates from the backing store.
        """
        with self._lock:
            entry = self._hot.get(series)
            if entry is not None:
                self._hot.move_to_end(series)
                return dict(entry.records), entry.updates
            state = self.backing.read(series)
            if state is None:
                return None
            records, updates = state
            self._hot[series] = _HotEntry(dict(records), int(updates), dirty=False)
            self.rehydrations += 1
            self._obs.rehydrations.inc()
            self._shrink()
            return dict(records), int(updates)

    def put_state(
        self, series: str, records: Mapping[str, float], updates: int
    ) -> None:
        """Record the new state of ``series`` (durable per ``flush_every``)."""
        with self._lock:
            entry = self._hot.get(series)
            if entry is None:
                entry = _HotEntry(dict(records), int(updates), dirty=True)
                self._hot[series] = entry
            else:
                entry.records = dict(records)
                entry.updates = int(updates)
                entry.dirty = True
                self._hot.move_to_end(series)
            entry.saves_since_flush += 1
            if entry.saves_since_flush >= self.flush_every:
                self._writeback(series, entry)
            self._shrink()

    def delete(self, series: str) -> None:
        """Forget one series in both tiers."""
        with self._lock:
            self._hot.pop(series, None)
            self.backing.delete(series)

    def series(self) -> Tuple[str, ...]:
        """Every known series: backing population plus unflushed hot ones."""
        with self._lock:
            known = set(self.backing.series())
            known.update(self._hot)
            return tuple(sorted(known))

    def __contains__(self, series: str) -> bool:
        with self._lock:
            return series in self._hot or series in self.backing

    # -- residency management --------------------------------------------

    def _writeback(self, series: str, entry: _HotEntry) -> None:
        self.backing.write(series, entry.records, entry.updates)
        entry.dirty = False
        entry.saves_since_flush = 0
        self.writebacks += 1
        self._obs.writebacks.inc()

    def _shrink(self) -> None:
        if self.hot_series is None:
            return
        while len(self._hot) > self.hot_series:
            series, entry = self._hot.popitem(last=False)
            if entry.dirty:
                self._writeback(series, entry)
            self.evictions += 1
            self._obs.evictions.inc()

    def evict(self, series: Optional[str] = None) -> int:
        """Evict one series (or the whole hot set), writing back dirty state.

        Returns the number of series evicted.
        """
        with self._lock:
            if series is not None:
                entry = self._hot.pop(series, None)
                if entry is None:
                    return 0
                if entry.dirty:
                    self._writeback(series, entry)
                self.evictions += 1
                self._obs.evictions.inc()
                return 1
            count = len(self._hot)
            self.flush()
            self._hot.clear()
            self.evictions += count
            for _ in range(count):
                self._obs.evictions.inc()
            return count

    def flush(self) -> None:
        """Write every dirty hot series through to the backing store."""
        with self._lock:
            for series, entry in self._hot.items():
                if entry.dirty:
                    self._writeback(series, entry)

    @property
    def hot_size(self) -> int:
        """Series currently resident in the hot set."""
        with self._lock:
            return len(self._hot)

    @property
    def dirty_count(self) -> int:
        """Hot series with state not yet written to the backing store."""
        with self._lock:
            return sum(1 for entry in self._hot.values() if entry.dirty)

    # -- maintenance ------------------------------------------------------

    def compact(self) -> None:
        """Flush dirty state and compact the backing store (timed)."""
        started = time.perf_counter()
        self.flush()
        self.backing.compact()
        self._obs.compaction_seconds.observe(time.perf_counter() - started)

    def _maintenance_loop(self, interval: float) -> None:
        while not self._maintenance_stop.wait(interval):
            try:
                self.compact()
            except Exception:
                pass  # storage errors surface on the next foreground write
            hook = self._maintenance_hook
            if hook is not None:
                try:
                    hook()
                except Exception:
                    pass

    def clear(self) -> None:
        """Forget everything in both tiers."""
        with self._lock:
            self._hot.clear()
            self.backing.clear()

    def close(self) -> None:
        """Flush dirty state, stop maintenance, close the backing store."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._maintenance_stop.set()
        thread = self._maintenance_thread
        if thread is not None:
            thread.join(timeout=5.0)
        self.flush()
        self.backing.close()

    # -- per-series views -------------------------------------------------

    def store_for(self, series: str) -> "TieredSeriesStore":
        """A single-series ``HistoryStore`` view over this tiered store."""
        return TieredSeriesStore(self, series)


class TieredSeriesStore(HistoryStore):
    """One series of a :class:`TieredHistoryStore` as a ``HistoryStore``.

    Implements the extended ``load_state``/``save_state`` protocol, so
    an attached :class:`~repro.voting.history.HistoryRecords` restores
    both its records and its update counter — the bit-identity
    requirement for transparent evict/rehydrate.
    """

    def __init__(self, tiered: TieredHistoryStore, series: str):
        self.tiered = tiered
        self.series = series

    def load_state(self) -> Optional[SeriesState]:
        return self.tiered.get_state(self.series)

    def save_state(self, records: Mapping[str, float], updates: int) -> None:
        self.tiered.put_state(self.series, records, updates)

    def load(self) -> Dict[str, float]:
        state = self.load_state()
        return state[0] if state is not None else {}

    def save(self, records: Mapping[str, float]) -> None:
        state = self.tiered.get_state(self.series)
        updates = state[1] if state is not None else 0
        self.save_state(records, updates)

    def clear(self) -> None:
        self.tiered.delete(self.series)
