"""In-memory history store — the fast path for single-process voting."""

from __future__ import annotations

from typing import Dict, Mapping

from .store import HistoryStore


class MemoryHistoryStore(HistoryStore):
    """Dictionary-backed store; contents live and die with the process."""

    def __init__(self):
        self._records: Dict[str, float] = {}
        self.save_count = 0
        self.load_count = 0

    def load(self) -> Dict[str, float]:
        self.load_count += 1
        return dict(self._records)

    def save(self, records: Mapping[str, float]) -> None:
        self.save_count += 1
        self._records = dict(records)

    def clear(self) -> None:
        self._records.clear()
