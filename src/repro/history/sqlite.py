"""SQLite-backed history store.

The paper's deployment keeps records in an on-device datastore and
names its reads/writes as the latency bottleneck of a history-aware
round (§7).  This backend is the closest stand-in available in the
standard library: a real transactional datastore with durable writes,
usable concurrently from multiple voter processes on one edge node.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path
from typing import Dict, Mapping, Union

from ..exceptions import HistoryStoreError
from .store import HistoryStore

_SCHEMA = """
CREATE TABLE IF NOT EXISTS history_records (
    module TEXT PRIMARY KEY,
    record REAL NOT NULL
)
"""


class SqliteHistoryStore(HistoryStore):
    """Durable history store backed by an SQLite database.

    Args:
        path: database file (":memory:" gives a private in-memory DB).
        synchronous: SQLite synchronous pragma (``"OFF"``, ``"NORMAL"``
            or ``"FULL"``); ``NORMAL`` matches edge-node deployments —
            durable enough, without a full fsync per round.
    """

    def __init__(
        self, path: Union[str, Path] = ":memory:", synchronous: str = "NORMAL"
    ):
        if synchronous.upper() not in ("OFF", "NORMAL", "FULL"):
            raise HistoryStoreError(
                f"synchronous must be OFF/NORMAL/FULL, got {synchronous!r}"
            )
        self.path = str(path)
        self._lock = threading.Lock()
        try:
            self._connection = sqlite3.connect(self.path, check_same_thread=False)
            self._connection.execute(f"PRAGMA synchronous={synchronous.upper()}")
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute(_SCHEMA)
            self._connection.commit()
        except sqlite3.Error as exc:
            raise HistoryStoreError(f"cannot open history database: {exc}")

    def load(self) -> Dict[str, float]:
        with self._lock:
            try:
                rows = self._connection.execute(
                    "SELECT module, record FROM history_records"
                ).fetchall()
            except sqlite3.Error as exc:
                raise HistoryStoreError(f"cannot read history records: {exc}")
        return {module: float(record) for module, record in rows}

    def save(self, records: Mapping[str, float]) -> None:
        with self._lock:
            try:
                self._connection.executemany(
                    "INSERT INTO history_records(module, record) VALUES(?, ?) "
                    "ON CONFLICT(module) DO UPDATE SET record=excluded.record",
                    [(m, float(r)) for m, r in records.items()],
                )
                self._connection.commit()
            except sqlite3.Error as exc:
                raise HistoryStoreError(f"cannot persist history records: {exc}")

    def clear(self) -> None:
        with self._lock:
            try:
                self._connection.execute("DELETE FROM history_records")
                self._connection.commit()
            except sqlite3.Error as exc:
                raise HistoryStoreError(f"cannot clear history records: {exc}")

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass

    def __enter__(self) -> "SqliteHistoryStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
