"""Packed, memory-mapped bulk store for per-series history state.

The JSONL backend keeps **one append-log file per series**; at 10\\ :sup:`5`
– 10\\ :sup:`6` series a shard pays one ``open``/``read`` per series on
cold start and the directory itself becomes the bottleneck.  This
module packs every series of a shard into a handful of **append-only
segment files** read through ``mmap``, with a compacting index log
mapping ``series key -> (segment, offset, length)``:

``seg-NNNNNN.pack``
    Append-only segment files holding binary record blocks.  A save
    appends a fresh block and the previous block for that series
    becomes dead space; segments roll over at ``segment_bytes``.
    Blocks are self-describing (they embed the series key) and
    checksummed, so a torn tail or injected garbage is detected on
    read instead of being trusted.

``index.jsonl``
    Append-only log of index entries; the *last* entry per series
    wins.  Torn trailing lines are ignored on replay.  Compaction
    rewrites it to one line per live series through
    :func:`repro.util.atomic_write` (sibling mkstemp + ``os.replace``),
    so a crash mid-compaction leaves either the old or the new index —
    never a truncated one.

Durability ordering makes recovery trivial: a block is appended and
flushed *before* its index entry, so every index entry points at a
complete block; a crash between the two leaves an orphan block that is
plain dead space.  If a block still fails its checksum (disk-level
corruption), the reader falls back to the previous index entry for
that series — the last durable state.

Block layout (little-endian)::

    magic   4s   b"AVH1"
    length  u32  payload bytes
    crc32   u32  of the payload
    payload:
        series_len u16, series utf-8
        updates    u64
        n_modules  u32
        n_modules x (name_len u16, name utf-8)
        n_modules x f64 record values
"""

from __future__ import annotations

import io
import json
import mmap
import os
import struct
import threading
import time
import zlib
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..exceptions import HistoryStoreError
from ..util import atomic_write
from .store import HistoryStore, SeriesState, SeriesStateStore

__all__ = ["PackedHistoryStore", "PackedSeriesStore"]

_MAGIC = b"AVH1"
_HEADER = struct.Struct("<4sII")  # magic, payload length, payload crc32
_U16 = struct.Struct("<H")
_META = struct.Struct("<QI")  # updates, n_modules

#: Default segment roll-over size.  Small enough that compaction moves
#: little data, large enough that a 100k-series shard fits in a few
#: dozen segments.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


def _encode_block(series: str, records: Mapping[str, float], updates: int) -> bytes:
    series_b = series.encode("utf-8")
    parts: List[bytes] = [_U16.pack(len(series_b)), series_b,
                          _META.pack(int(updates), len(records))]
    values: List[float] = []
    for module, value in records.items():
        module_b = module.encode("utf-8")
        parts.append(_U16.pack(len(module_b)))
        parts.append(module_b)
        values.append(float(value))
    parts.append(struct.pack(f"<{len(values)}d", *values))
    payload = b"".join(parts)
    return _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload


def _decode_block(buffer: bytes, offset: int, length: int) -> Tuple[str, Dict[str, float], int]:
    """Decode one block; raises ``HistoryStoreError`` on any corruption."""
    if offset < 0 or offset + length > len(buffer):
        raise HistoryStoreError("block lies outside the segment")
    if length < _HEADER.size:
        raise HistoryStoreError("block shorter than its header")
    magic, payload_len, crc = _HEADER.unpack_from(buffer, offset)
    if magic != _MAGIC:
        raise HistoryStoreError("bad block magic")
    if _HEADER.size + payload_len != length:
        raise HistoryStoreError("block length mismatch")
    payload = bytes(buffer[offset + _HEADER.size: offset + length])
    if zlib.crc32(payload) != crc:
        raise HistoryStoreError("block checksum mismatch")
    pos = 0
    (series_len,) = _U16.unpack_from(payload, pos)
    pos += _U16.size
    series = payload[pos: pos + series_len].decode("utf-8")
    pos += series_len
    updates, n_modules = _META.unpack_from(payload, pos)
    pos += _META.size
    names: List[str] = []
    for _ in range(n_modules):
        (name_len,) = _U16.unpack_from(payload, pos)
        pos += _U16.size
        names.append(payload[pos: pos + name_len].decode("utf-8"))
        pos += name_len
    values = struct.unpack_from(f"<{n_modules}d", payload, pos)
    if pos + 8 * n_modules != len(payload):
        raise HistoryStoreError("block payload has trailing bytes")
    return series, dict(zip(names, values)), int(updates)


class _Entry:
    """Where one series' latest block lives."""

    __slots__ = ("segment", "offset", "length")

    def __init__(self, segment: int, offset: int, length: int):
        self.segment = segment
        self.offset = offset
        self.length = length


class PackedHistoryStore(SeriesStateStore):
    """Bulk series-state store over packed mmap segments.

    Args:
        directory: segment + index directory (created on demand).
        segment_bytes: roll to a new segment past this size.
        compact_dead_fraction: run :meth:`compact` automatically once
            this fraction of all segment bytes is dead (None disables
            auto-compaction; :meth:`compact` can still be called).
        compact_min_bytes: never auto-compact below this many dead
            bytes (compaction rewrites the whole live set).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        compact_dead_fraction: Optional[float] = 0.5,
        compact_min_bytes: int = 1024 * 1024,
    ):
        if segment_bytes < 4096:
            raise HistoryStoreError("segment_bytes must be >= 4096")
        self.directory = Path(directory)
        self.segment_bytes = int(segment_bytes)
        self.compact_dead_fraction = compact_dead_fraction
        self.compact_min_bytes = int(compact_min_bytes)
        self.compactions = 0
        self.last_compaction_seconds = 0.0
        self._lock = threading.RLock()
        self._entries: Dict[str, _Entry] = {}
        #: One-deep fallback: the previous entry per series, used when
        #: the latest block fails its checksum (disk corruption).
        self._stale: Dict[str, _Entry] = {}
        self._segment_sizes: Dict[int, int] = {}
        self._live_bytes: Dict[int, int] = {}
        self._mmaps: Dict[int, mmap.mmap] = {}
        self._active_segment = 0
        self._active_handle: Optional[io.BufferedWriter] = None
        self._index_handle: Optional[io.TextIOWrapper] = None
        self._closed = False
        self._compacting = False
        self._load()

    # -- paths -------------------------------------------------------------

    def _segment_path(self, segment: int) -> Path:
        return self.directory / f"seg-{segment:06d}.pack"

    @property
    def index_path(self) -> Path:
        return self.directory / "index.jsonl"

    # -- startup -----------------------------------------------------------

    def _load(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        for path in self.directory.glob("seg-*.pack"):
            try:
                segment = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            self._segment_sizes[segment] = path.stat().st_size
            self._live_bytes[segment] = 0
        self._active_segment = max(self._segment_sizes, default=1)
        index = self.index_path
        if index.exists():
            try:
                with open(index, "r", encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            raw = json.loads(line)
                            if raw.get("x"):
                                self._drop_entry(str(raw["k"]))
                                continue
                            entry = _Entry(
                                int(raw["s"]), int(raw["o"]), int(raw["l"])
                            )
                            series = str(raw["k"])
                        except (KeyError, TypeError, ValueError):
                            continue  # torn or garbage line: skip
                        if entry.segment not in self._segment_sizes or (
                            entry.offset + entry.length
                            > self._segment_sizes[entry.segment]
                        ):
                            # Points past the segment (torn segment tail
                            # that somehow got indexed, or a missing
                            # segment file): not durable, skip it.
                            continue
                        self._set_entry(series, entry)
            except OSError as exc:
                raise HistoryStoreError(f"cannot read packed index {index}: {exc}")

    # -- entry bookkeeping -------------------------------------------------

    def _set_entry(self, series: str, entry: _Entry) -> None:
        old = self._entries.get(series)
        if old is not None:
            self._live_bytes[old.segment] = (
                self._live_bytes.get(old.segment, 0) - old.length
            )
            self._stale[series] = old
        self._entries[series] = entry
        self._live_bytes[entry.segment] = (
            self._live_bytes.get(entry.segment, 0) + entry.length
        )

    def _drop_entry(self, series: str) -> None:
        old = self._entries.pop(series, None)
        if old is not None:
            self._live_bytes[old.segment] = (
                self._live_bytes.get(old.segment, 0) - old.length
            )
        self._stale.pop(series, None)

    # -- handles -----------------------------------------------------------

    def _writer(self) -> io.BufferedWriter:
        if self._active_handle is None:
            path = self._segment_path(self._active_segment)
            self._active_handle = open(path, "ab")
            self._segment_sizes.setdefault(self._active_segment, path.stat().st_size)
        return self._active_handle

    def _index_writer(self) -> io.TextIOWrapper:
        if self._index_handle is None:
            self._index_handle = open(self.index_path, "a", encoding="utf-8")
        return self._index_handle

    def _roll_segment(self) -> None:
        if self._active_handle is not None:
            self._active_handle.close()
            self._active_handle = None
        self._active_segment += 1
        self._segment_sizes[self._active_segment] = 0
        self._live_bytes.setdefault(self._active_segment, 0)

    def _map(self, segment: int, end: int) -> mmap.mmap:
        """A read mapping of ``segment`` covering at least ``end`` bytes."""
        mapped = self._mmaps.get(segment)
        if mapped is None or len(mapped) < end:
            if mapped is not None:
                mapped.close()
            if segment == self._active_segment and self._active_handle is not None:
                self._active_handle.flush()
            with open(self._segment_path(segment), "rb") as handle:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            self._mmaps[segment] = mapped
        return mapped

    def _drop_maps(self) -> None:
        for mapped in self._mmaps.values():
            mapped.close()
        self._mmaps.clear()

    # -- SeriesStateStore --------------------------------------------------

    def read(self, series: str) -> Optional[SeriesState]:
        with self._lock:
            entry = self._entries.get(series)
            if entry is None:
                return None
            try:
                return self._read_entry(series, entry)
            except (HistoryStoreError, OSError, ValueError):
                # Corrupt latest block: fall back to the previous
                # durable state for this series, if any survives.
                fallback = self._stale.get(series)
                if fallback is None:
                    return None
                try:
                    return self._read_entry(series, fallback)
                except (HistoryStoreError, OSError, ValueError):
                    return None

    def _read_entry(self, series: str, entry: _Entry) -> SeriesState:
        buffer = self._map(entry.segment, entry.offset + entry.length)
        key, records, updates = _decode_block(buffer, entry.offset, entry.length)
        if key != series:
            raise HistoryStoreError(
                f"index for {series!r} points at a block for {key!r}"
            )
        return records, updates

    def write(self, series: str, records: Mapping[str, float], updates: int) -> None:
        block = _encode_block(series, records, updates)
        with self._lock:
            if self._closed:
                raise HistoryStoreError("packed store is closed")
            if (
                self._segment_sizes.get(self._active_segment, 0) + len(block)
                > self.segment_bytes
                and self._segment_sizes.get(self._active_segment, 0) > 0
            ):
                self._roll_segment()
            writer = self._writer()
            offset = self._segment_sizes.get(self._active_segment, 0)
            try:
                writer.write(block)
                writer.flush()
            except OSError as exc:
                raise HistoryStoreError(f"cannot append packed block: {exc}")
            self._segment_sizes[self._active_segment] = offset + len(block)
            entry = _Entry(self._active_segment, offset, len(block))
            # Block is durable before its index entry: every replayed
            # index line points at a complete block.
            self._append_index_line(
                {"k": series, "s": entry.segment, "o": offset, "l": len(block)}
            )
            self._set_entry(series, entry)
            self._maybe_compact()

    def _append_index_line(self, payload: Dict[str, object]) -> None:
        try:
            writer = self._index_writer()
            writer.write(json.dumps(payload) + "\n")
            writer.flush()
        except OSError as exc:
            raise HistoryStoreError(f"cannot append packed index: {exc}")

    def delete(self, series: str) -> None:
        with self._lock:
            if series not in self._entries:
                return
            self._append_index_line({"k": series, "x": 1})
            self._drop_entry(series)

    def series(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._entries))

    def __contains__(self, series: str) -> bool:
        with self._lock:
            return series in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self.close()
            for path in self.directory.glob("seg-*.pack"):
                try:
                    path.unlink()
                except OSError:
                    pass
            try:
                if self.index_path.exists():
                    self.index_path.unlink()
            except OSError:
                pass
            self._entries.clear()
            self._stale.clear()
            self._segment_sizes = {}
            self._live_bytes = {}
            self._active_segment = 1
            self._closed = False

    def close(self) -> None:
        with self._lock:
            self._drop_maps()
            if self._active_handle is not None:
                self._active_handle.close()
                self._active_handle = None
            if self._index_handle is not None:
                self._index_handle.close()
                self._index_handle = None
            self._closed = True

    def __enter__(self) -> "PackedHistoryStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- storage accounting ------------------------------------------------

    @property
    def segment_count(self) -> int:
        with self._lock:
            return sum(1 for size in self._segment_sizes.values() if size > 0)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(self._segment_sizes.values())

    @property
    def live_bytes(self) -> int:
        with self._lock:
            return sum(self._live_bytes.values())

    @property
    def dead_bytes(self) -> int:
        with self._lock:
            return self.total_bytes - self.live_bytes

    # -- compaction --------------------------------------------------------

    def _maybe_compact(self) -> None:
        if self.compact_dead_fraction is None or self._compacting:
            return
        total = self.total_bytes
        dead = total - self.live_bytes
        if dead < self.compact_min_bytes or total <= 0:
            return
        if dead / total >= self.compact_dead_fraction:
            self.compact()

    def compact(self) -> None:
        """Rewrite every live block into fresh segments, drop the rest.

        Crash-safe by ordering: live blocks are re-appended (with index
        lines) first, then the index log is rewritten atomically to one
        line per series, and only then are the dead segment files
        unlinked.  A crash at any point leaves a loadable store — at
        worst with some duplicated (dead) blocks that the next
        compaction reclaims.
        """
        with self._lock:
            if self._compacting:
                return
            self._compacting = True
            try:
                self._compact_locked()
            finally:
                self._compacting = False

    def _compact_locked(self) -> None:
        started = time.perf_counter()
        old_segments = [
            segment
            for segment, size in self._segment_sizes.items()
            if size > 0 and segment != self._active_segment
        ]
        # Roll first so rewritten blocks land in a segment that is
        # not itself being compacted away; the old active segment
        # joins the compaction set if it holds dead bytes.
        if self._segment_sizes.get(self._active_segment, 0) > 0:
            old_segments.append(self._active_segment)
            self._roll_segment()
        for series in list(self._entries):
            entry = self._entries[series]
            if entry.segment == self._active_segment:
                continue
            state = self.read(series)
            if state is None:
                self._drop_entry(series)
                continue
            records, updates = state
            self.write(series, records, updates)
        # The full index is now redundant: rewrite it to one line
        # per live series, atomically.
        lines = [
            json.dumps(
                {"k": series, "s": entry.segment, "o": entry.offset,
                 "l": entry.length}
            )
            for series, entry in sorted(self._entries.items())
        ]
        if self._index_handle is not None:
            self._index_handle.close()
            self._index_handle = None
        atomic_write(self.index_path, "".join(line + "\n" for line in lines))
        self._stale.clear()
        self._drop_maps()
        for segment in old_segments:
            if segment == self._active_segment:
                continue
            try:
                self._segment_path(segment).unlink()
            except OSError:
                pass
            self._segment_sizes.pop(segment, None)
            self._live_bytes.pop(segment, None)
        self.compactions += 1
        self.last_compaction_seconds = time.perf_counter() - started

    # -- per-series adapter ------------------------------------------------

    def store_for(self, series: str) -> "PackedSeriesStore":
        """A per-series :class:`HistoryStore` view over this bulk store."""
        return PackedSeriesStore(self, series)


class PackedSeriesStore(HistoryStore):
    """One series' view of a :class:`PackedHistoryStore`.

    Implements the extended state protocol (``load_state`` /
    ``save_state``) so attached
    :class:`~repro.voting.history.HistoryRecords` persist their update
    counter and rehydrate bit-identically.
    """

    def __init__(self, backing: PackedHistoryStore, series: str):
        self.backing = backing
        self.series = series

    def load_state(self) -> Optional[SeriesState]:
        return self.backing.read(self.series)

    def save_state(self, records: Mapping[str, float], updates: int) -> None:
        self.backing.write(self.series, records, updates)

    def load(self) -> Dict[str, float]:
        state = self.backing.read(self.series)
        return state[0] if state is not None else {}

    def save(self, records: Mapping[str, float]) -> None:
        state = self.backing.read(self.series)
        self.backing.write(self.series, records, state[1] if state else 0)

    def clear(self) -> None:
        self.backing.delete(self.series)
